//! Prints the paper-style experiment tables recorded in `EXPERIMENTS.md`.
//!
//! Each section corresponds to one experiment of the index in `DESIGN.md` (T1,
//! F1–F10). The binary is deliberately text-only: run it with
//! `cargo run -p psi-bench --release --bin experiments [section ...]` and paste the
//! relevant rows into `EXPERIMENTS.md`.

use planar_subiso::{
    build_cover, build_cover_with_stats, find_separating_occurrence_with_stats, run_parallel,
    search_cover, vertex_connectivity, ConnectivityMode, DynamicPsiIndex, IndexParams,
    IndexedEngine, ParallelDpConfig, Pattern, Psi, PsiIndex, SeparatingInstance,
    SubgraphIsomorphism, DEFAULT_BATCH_BUDGET,
};
use psi_baselines::{eppstein_sequential_decide, flow_vertex_connectivity, ullmann_decide};
use psi_bench::{size_sweep, table1_patterns, target_with_n};
use psi_cluster::cluster;
use psi_graph::generators;
use psi_obs::BenchReport;
use psi_planar::generators as pg;
use psi_treedecomp::{
    min_degree_decomposition, path_layers::RootedTree, tree_into_paths, BinaryTreeDecomposition,
};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Writes a rendered [`BenchReport`] and validates it parses as JSON before it
/// can become the committed baseline.
fn write_report(path: &str, report: &BenchReport) {
    let text = report.render();
    psi_obs::json::parse(&text).expect("bench report must be valid JSON");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// The in-run tracing-overhead gate: `traced` must stay within 10% of its
/// untraced twin (plus 10 ms of absolute slack for timer noise on fast cases).
/// Returns `true` when the gate fails.
fn traced_overhead_gate(name: &str, untraced_ms: f64, traced_ms: f64) -> bool {
    let ratio = traced_ms / untraced_ms;
    let bad = ratio > 1.10 && traced_ms > untraced_ms + 10.0;
    let verdict = if bad { "OVERHEAD REGRESSED" } else { "ok" };
    println!(
        "--check: {name:<26} untraced {untraced_ms:>9.2} ms, traced {traced_ms:>9.2} ms, \
         overhead {:>5.1}%  {verdict}",
        (ratio - 1.0) * 100.0
    );
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(name));

    if want("t1") {
        t1_decision();
    }
    if want("f1") {
        f1_cover();
    }
    if want("f2") {
        f2_cluster();
    }
    if want("f3") {
        f3_scaling_n();
    }
    if want("f4") {
        f4_scaling_k();
    }
    if want("f5") {
        f5_listing();
    }
    if want("f6") {
        f6_disconnected();
    }
    if want("f7") {
        f7_connectivity();
    }
    if want("f8") {
        f8_threads();
    }
    if want("f9") {
        f9_shortcuts();
    }
    if want("f10") {
        f10_path_layers();
    }
    if want("bench_dp") {
        let check = args.iter().any(|a| a == "--check");
        bench_dp(check);
    }
    if want("bench_cover") {
        let check = args.iter().any(|a| a == "--check");
        bench_cover(check);
    }
    if want("bench_planarity") {
        let check = args.iter().any(|a| a == "--check");
        bench_planarity(check);
    }
    if want("bench_serve") {
        let check = args.iter().any(|a| a == "--check");
        bench_serve(check);
    }
    if want("bench_dynamic") {
        let check = args.iter().any(|a| a == "--check");
        bench_dynamic(check);
    }
}

/// One machine-readable measurement of the planarity engine.
struct PlanarityBenchCase {
    name: &'static str,
    n: usize,
    all_ms: Vec<f64>,
    faces: usize,
    blocks: usize,
    witness_edges: usize,
}

/// Median with the same convention as the criterion shim's `SampleStats` (even
/// sample counts average the central pair); run counts here are odd anyway.
fn median_of(all_ms: &[f64]) -> f64 {
    let mut sorted = all_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn stddev_of(all_ms: &[f64]) -> f64 {
    if all_ms.len() < 2 {
        return 0.0;
    }
    let mean = all_ms.iter().sum::<f64>() / all_ms.len() as f64;
    (all_ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (all_ms.len() - 1) as f64).sqrt()
}

/// A triangulated grid with a `K5` wired between five spread-out vertices — the
/// witness-extraction workload (the obstruction hides inside one big block).
fn grid_with_hidden_k5(side: usize) -> psi_graph::CsrGraph {
    let g = generators::triangulated_grid(side, side);
    let mut b = psi_graph::GraphBuilder::with_capacity(g.num_vertices(), g.num_edges() + 10);
    b.extend_edges(g.edges());
    let at = |r: usize, c: usize| (r * side + c) as u32;
    let picks = [
        at(0, 0),
        at(0, side - 1),
        at(side - 1, 0),
        at(side - 1, side - 1),
        at(side / 2, side / 2),
    ];
    for i in 0..picks.len() {
        for j in (i + 1)..picks.len() {
            if !g.has_edge(picks[i], picks[j]) {
                b.add_edge(picks[i], picks[j]);
            }
        }
    }
    b.build()
}

/// bench_planarity — machine-readable planarity-engine baselines
/// (`BENCH_planarity.json`).
///
/// Covers the embed cost across sizes up to the paper's million-vertex headline
/// instance (embedding-stripped triangulated grids plus a maximal planar stacked
/// triangulation), the rejection path (witness extraction for a `K5` hidden in a
/// large planar block), and the end-to-end arbitrary-graph front door
/// (`Psi::decide_in(C4)`, i.e. the LR planarity gate + cover pipeline). With `--check`,
/// fresh medians are gated at 2x against the committed `BENCH_planarity.json` —
/// the same nightly CI contract as `bench_cover`.
fn bench_planarity(check: bool) {
    println!("\n== bench_planarity: planarity-engine baselines -> BENCH_planarity.json ==");
    let baseline = std::fs::read_to_string("BENCH_planarity.json").ok();
    let mut cases: Vec<PlanarityBenchCase> = Vec::new();

    // Embedding-stripped planar inputs: the engine recomputes what the generators
    // used to carry natively.
    let embed_cases: Vec<(&'static str, psi_graph::CsrGraph, usize)> = vec![
        ("embed_grid_65k", generators::triangulated_grid(256, 256), 5),
        (
            "embed_grid_262k",
            generators::triangulated_grid(512, 512),
            3,
        ),
        (
            "embed_grid_1m",
            generators::triangulated_grid(1024, 1024),
            3,
        ),
        (
            "embed_stacked_262k",
            generators::random_stacked_triangulation(262_144, 7),
            3,
        ),
    ];
    for (name, g, runs) in embed_cases {
        let mut all_ms = Vec::new();
        let mut faces = 0;
        let mut blocks = 0;
        for _ in 0..runs {
            let start = Instant::now();
            let (res, stats) = psi_planar::planar_embedding_with_stats(&g);
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            let e = res.expect("planar input rejected");
            faces = e.num_faces();
            blocks = stats.blocks;
        }
        cases.push(PlanarityBenchCase {
            name,
            n: g.num_vertices(),
            all_ms,
            faces,
            blocks,
            witness_edges: 0,
        });
    }

    // Rejection path: LR failure plus chunked witness minimisation inside a 10k-vertex
    // block.
    {
        let g = grid_with_hidden_k5(100);
        let mut all_ms = Vec::new();
        let mut witness_edges = 0;
        for _ in 0..3 {
            let start = Instant::now();
            let w = psi_planar::planar_embedding(&g).expect_err("hidden K5 accepted");
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            assert!(w.verify(&g), "witness failed verification");
            witness_edges = w.num_edges();
        }
        cases.push(PlanarityBenchCase {
            name: "reject_hidden_k5_10k",
            n: g.num_vertices(),
            all_ms,
            faces: 0,
            blocks: 0,
            witness_edges,
        });
    }

    // End-to-end front door: planarity gate + decide(C4) on a bare graph.
    {
        let g = generators::triangulated_grid(512, 512);
        let c4 = Pattern::cycle(4);
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            assert!(Psi::decide_in(&c4, &g).expect("grid rejected"));
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
        }
        cases.push(PlanarityBenchCase {
            name: "auto_decide_c4_262k",
            n: g.num_vertices(),
            all_ms,
            faces: 0,
            blocks: 0,
            witness_edges: 0,
        });
    }

    let mut report = BenchReport::new("bench_planarity/v1", host_threads());
    for c in &cases {
        report.push(
            report
                .case(c.name)
                .u64("n", c.n as u64)
                .f64("median_ms", median_of(&c.all_ms), 2)
                .f64("stddev_ms", stddev_of(&c.all_ms), 2)
                .f64_list("all_ms", &c.all_ms, 2)
                .u64("faces", c.faces as u64)
                .u64("blocks", c.blocks as u64)
                .u64("witness_edges", c.witness_edges as u64),
        );
        println!(
            "{:<22} n {:>8}   median {:>9.2} ms  σ {:>7.2} ms   faces {:>8}   blocks {:>3}   witness {:>3}",
            c.name,
            c.n,
            median_of(&c.all_ms),
            stddev_of(&c.all_ms),
            c.faces,
            c.blocks,
            c.witness_edges
        );
    }
    write_report("BENCH_planarity.json", &report);

    if check {
        let Some(baseline) = baseline else {
            println!("--check: no committed BENCH_planarity.json baseline; skipping gate");
            return;
        };
        let mut regressed = false;
        for c in &cases {
            let Some(old) = extract_case_median(&baseline, c.name) else {
                println!("--check: case {} absent from baseline; skipping", c.name);
                continue;
            };
            let fresh = median_of(&c.all_ms);
            let ratio = fresh / old;
            let verdict = if ratio > 2.0 { "REGRESSED" } else { "ok" };
            println!(
                "--check: {:<22} baseline {:>9.2} ms, fresh {:>9.2} ms, ratio {:>5.2}x  {}",
                c.name, old, fresh, ratio, verdict
            );
            if ratio > 2.0 {
                regressed = true;
            }
        }
        if regressed {
            eprintln!("bench_planarity regression gate failed (>2x against committed baseline)");
            std::process::exit(1);
        }
    }
}

/// One machine-readable measurement of the sharded cover pipeline.
struct CoverBenchCase {
    name: &'static str,
    n: usize,
    all_ms: Vec<f64>,
    pieces: usize,
    skipped_small: usize,
    batches: usize,
    scratch_bytes: usize,
}

impl CoverBenchCase {
    fn median_ms(&self) -> f64 {
        median_of(&self.all_ms)
    }
}

/// bench_cover — machine-readable cover-pipeline baselines (`BENCH_cover.json`).
///
/// Covers the three cost centres of the million-vertex workload: eager cover
/// construction across sizes up to `n = 10^6`, the streamed batch scan (construction
/// plus disjoint-union packing, no DP), and the end-to-end `decide(C4)` at one
/// million vertices. With `--check`, the fresh medians are compared against the
/// committed `BENCH_cover.json` and the process exits non-zero when any case
/// regressed by more than 2x — the nightly CI gate.
fn bench_cover(check: bool) {
    println!("\n== bench_cover: sharded cover-pipeline baselines -> BENCH_cover.json ==");
    let baseline = std::fs::read_to_string("BENCH_cover.json").ok();
    let mut cases: Vec<CoverBenchCase> = Vec::new();

    // Odd run counts everywhere: an odd sample has a true middle element, so the
    // regression gate compares one real run, not an average of two.
    for (name, n, runs) in [
        ("cover_build_65k", 65_536usize, 3usize),
        ("cover_build_262k", 262_144, 3),
        ("cover_build_1m", 1_000_000, 3),
    ] {
        let g = target_with_n(n);
        let mut all_ms = Vec::new();
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let (cover, stats) = build_cover_with_stats(&g, 4, 1, 7);
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            last = Some(stats);
            drop(cover);
        }
        let stats = last.unwrap();
        cases.push(CoverBenchCase {
            name,
            n: g.num_vertices(),
            all_ms,
            pieces: stats.pieces,
            skipped_small: stats.skipped_small,
            batches: stats.batches,
            scratch_bytes: stats.scratch_bytes,
        });
    }

    // Streamed scan: windows below k are skipped before construction, survivors are
    // packed into DEFAULT_BATCH_BUDGET-vertex unions; no DP runs, so this isolates
    // the pipeline cost that `decide` pays per cover round.
    {
        let g = target_with_n(262_144);
        let mut all_ms = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            let start = Instant::now();
            let (none, stats) =
                search_cover::<(), _>(&g, 4, 1, 7, 4, DEFAULT_BATCH_BUDGET, |_| None);
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            assert!(none.is_none());
            last = Some(stats);
        }
        let stats = last.unwrap();
        cases.push(CoverBenchCase {
            name: "cover_scan_262k",
            n: g.num_vertices(),
            all_ms,
            pieces: stats.pieces,
            skipped_small: stats.skipped_small,
            batches: stats.batches,
            scratch_bytes: stats.scratch_bytes,
        });
    }

    // End-to-end decision at the headline size (hit in the first cover round; the
    // cost is clustering + streaming up to the first batch with a C4).
    {
        let g = target_with_n(1_000_000);
        let query = SubgraphIsomorphism::new(Pattern::cycle(4));
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            let start = Instant::now();
            assert!(query.decide(&g));
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
        }
        cases.push(CoverBenchCase {
            name: "decide_c4_1m",
            n: g.num_vertices(),
            all_ms,
            pieces: 0,
            skipped_small: 0,
            batches: 0,
            scratch_bytes: 0,
        });
    }

    // Tracing-overhead twin of cover_build_1m: the identical build with the
    // span gate open and every cover.build / cover.shard span recorded. The
    // --check gate holds the traced median within 10% of the untraced one; the
    // untraced median itself (the disabled path: one relaxed load per span
    // site) is bounded by the standing 2x baseline gate above.
    {
        let g = target_with_n(1_000_000);
        psi_obs::set_tracing(true);
        let mut all_ms = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            psi_obs::trace::clear();
            let start = Instant::now();
            let (cover, stats) = build_cover_with_stats(&g, 4, 1, 7);
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            last = Some(stats);
            drop(cover);
        }
        psi_obs::set_tracing(false);
        psi_obs::trace::clear();
        let stats = last.unwrap();
        cases.push(CoverBenchCase {
            name: "cover_build_1m_traced",
            n: g.num_vertices(),
            all_ms,
            pieces: stats.pieces,
            skipped_small: stats.skipped_small,
            batches: stats.batches,
            scratch_bytes: stats.scratch_bytes,
        });
    }

    let mut report = BenchReport::new("bench_cover/v2", host_threads());
    // Measured impact of replacing the BTreeMap round merge in `cluster_parallel`
    // with the sort-based merge (identical clusterings, same container, 1 core):
    // cover_build_262k 130.1 -> 89.5 ms, cover_build_1m 507.6 -> 338.8 ms,
    // cover_scan_262k 101.7 -> 68.5 ms, decide_c4_1m 390.1 -> 200.8 ms.
    report.notes(
        "sort-based clustering round merge (PR 5): cover_build_262k \
         130.1->89.5ms, cover_build_1m 507.6->338.8ms, cover_scan_262k 101.7->68.5ms, \
         decide_c4_1m 390.1->200.8ms vs the BTreeMap merge on the same 1-core host; \
         cover_build_1m_traced is the same build with psi_obs tracing enabled \
         (gated at <=10% overhead in --check)",
    );
    for c in &cases {
        report.push(
            report
                .case(c.name)
                .u64("n", c.n as u64)
                .f64("median_ms", c.median_ms(), 2)
                .f64_list("all_ms", &c.all_ms, 2)
                .u64("pieces", c.pieces as u64)
                .u64("skipped_small", c.skipped_small as u64)
                .u64("batches", c.batches as u64)
                .u64("scratch_bytes", c.scratch_bytes as u64),
        );
        println!(
            "{:<18} n {:>8}   median {:>9.2} ms   pieces {:>7}   skipped {:>7}   batches {:>6}   scratch {:>8} B",
            c.name, c.n, c.median_ms(), c.pieces, c.skipped_small, c.batches, c.scratch_bytes
        );
    }
    write_report("BENCH_cover.json", &report);

    if check {
        let Some(baseline) = baseline else {
            println!("--check: no committed BENCH_cover.json baseline; skipping gate");
            return;
        };
        let mut regressed = false;
        for c in &cases {
            let Some(old) = extract_case_median(&baseline, c.name) else {
                println!("--check: case {} absent from baseline; skipping", c.name);
                continue;
            };
            let fresh = c.median_ms();
            let ratio = fresh / old;
            let verdict = if ratio > 2.0 { "REGRESSED" } else { "ok" };
            println!(
                "--check: {:<18} baseline {:>9.2} ms, fresh {:>9.2} ms, ratio {:>5.2}x  {}",
                c.name, old, fresh, ratio, verdict
            );
            if ratio > 2.0 {
                regressed = true;
            }
        }
        // In-run tracing overhead: traced vs untraced medians of the same run,
        // so the gate is immune to host drift between baseline and fresh runs.
        let untraced = cases.iter().find(|c| c.name == "cover_build_1m");
        let traced = cases.iter().find(|c| c.name == "cover_build_1m_traced");
        if let (Some(u), Some(t)) = (untraced, traced) {
            if traced_overhead_gate("cover_build_1m_traced", u.median_ms(), t.median_ms()) {
                regressed = true;
            }
        }
        if regressed {
            eprintln!(
                "bench_cover regression gate failed (>2x against committed baseline, \
                 or >10% tracing overhead)"
            );
            std::process::exit(1);
        }
    }
}

/// One machine-readable measurement of the build-once / serve-many index engine.
struct ServeBenchCase {
    name: &'static str,
    n: usize,
    all_ms: Vec<f64>,
    /// Queries amortised over one timed call (1 for the build/save/load cases).
    queries: usize,
    /// Serialized artifact size where applicable (0 otherwise).
    bytes: u64,
}

impl ServeBenchCase {
    fn median_ms(&self) -> f64 {
        median_of(&self.all_ms)
    }
}

/// bench_serve — machine-readable index-artifact baselines (`BENCH_serve.json`).
///
/// Measures the build-once / serve-many split at the headline `n = 10^6` size: index
/// construction, artifact save and (validating) load, and the sustained query side —
/// positive `decide(C4)` amortised over a 256-query batch (the headline number: the
/// classic path pays a full cover rebuild, ~200 ms, *per* decide), the exhaustive
/// negative scan (`K4`), and an s–t connectivity batch. With `--check`, fresh
/// medians gate >2x regressions against the committed `BENCH_serve.json` exactly
/// like `bench_cover`.
fn bench_serve(check: bool) {
    println!("\n== bench_serve: index build/load/serve baselines -> BENCH_serve.json ==");
    let baseline = std::fs::read_to_string("BENCH_serve.json").ok();
    let mut cases: Vec<ServeBenchCase> = Vec::new();

    let side = 1000usize;
    let embedding = pg::triangulated_grid_embedded(side, side);
    let n = embedding.graph.num_vertices();
    let params = IndexParams::default();

    // Build: `rounds` cover passes + per-batch decompositions + face–vertex graph.
    let mut all_ms = Vec::new();
    let mut index = None;
    for _ in 0..3 {
        let (built, ms) = timed(|| PsiIndex::build(&embedding, params));
        all_ms.push(ms);
        index = Some(built);
    }
    let index = index.unwrap();
    cases.push(ServeBenchCase {
        name: "index_build_1m",
        n,
        all_ms,
        queries: 1,
        bytes: 0,
    });
    drop(embedding);

    // Save / load round trip through a real file (load re-validates everything).
    let path = std::env::temp_dir().join("psi_bench_serve.psi");
    let mut save_ms = Vec::new();
    for _ in 0..3 {
        let (res, ms) = timed(|| index.save(&path));
        res.expect("write index artifact");
        save_ms.push(ms);
    }
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    cases.push(ServeBenchCase {
        name: "index_save_1m",
        n,
        all_ms: save_ms,
        queries: 1,
        bytes,
    });
    let mut load_ms = Vec::new();
    for _ in 0..3 {
        let (loaded, ms) = timed(|| PsiIndex::load(&path).expect("load index artifact"));
        load_ms.push(ms);
        assert_eq!(loaded.target().num_vertices(), n);
    }
    std::fs::remove_file(&path).ok();
    cases.push(ServeBenchCase {
        name: "index_load_1m",
        n,
        all_ms: load_ms,
        queries: 1,
        bytes,
    });

    let engine = IndexedEngine::new(&index);

    // Sustained positive queries: 256 decide(C4) per timed call. The classic path
    // rebuilds the cover per query (~200 ms, see BENCH_cover decide_c4_1m); served
    // from the prebuilt index the amortised per-query cost must stay single-digit ms.
    {
        let queries = 256usize;
        let patterns = vec![Pattern::cycle(4); queries];
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            let (verdicts, ms) = timed(|| engine.decide_batch(&patterns));
            assert!(verdicts.iter().all(|v| matches!(v, Ok(true))));
            all_ms.push(ms);
        }
        let per_query = median_of(&all_ms) / queries as f64;
        println!("  (serve_decide_c4_1m amortised: {per_query:.6} ms/query)");
        cases.push(ServeBenchCase {
            name: "serve_decide_c4_1m",
            n,
            all_ms,
            queries,
            bytes: 0,
        });
    }

    // Negative pattern: K4 is absent from a triangulated grid, so every query scans
    // all stored batches of all rounds — the worst case the index can be asked.
    // Viable at n = 1M only because of the per-batch backtracking fast path: the
    // exhaustive DP scan costs ~25 ms per batch (minutes per query); the fast path
    // settles each ~256-vertex batch exactly in microseconds.
    {
        let queries = 2usize;
        let patterns = vec![Pattern::clique(4); queries];
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            let (verdicts, ms) = timed(|| engine.decide_batch(&patterns));
            assert!(verdicts.iter().all(|v| matches!(v, Ok(false))));
            all_ms.push(ms);
        }
        cases.push(ServeBenchCase {
            name: "serve_decide_k4_neg_1m",
            n,
            all_ms,
            queries,
            bytes: 0,
        });
    }

    // s–t connectivity batch against the shared target (capped unit-capacity flow).
    {
        let queries = 64usize;
        let pairs: Vec<(u32, u32)> = (0..queries as u32)
            .map(|i| (i * 997 % n as u32, (i * 7919 + n as u32 / 2) % n as u32))
            .filter(|(s, t)| s != t)
            .collect();
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            let (answers, ms) = timed(|| engine.connectivity_batch(&pairs));
            assert!(answers.iter().all(|a| a.is_ok()));
            all_ms.push(ms);
        }
        cases.push(ServeBenchCase {
            name: "serve_connectivity_1m",
            n,
            all_ms,
            queries: pairs.len(),
            bytes: 0,
        });
    }

    let mut report = BenchReport::new("bench_serve/v1", host_threads());
    report.notes(
        "build-once / serve-many index artifact (PR 6): per-query cost \
         is median_ms / queries; the classic path pays a full cover rebuild per \
         decide (BENCH_cover decide_c4_1m) where the served path reuses the frozen \
         rounds",
    );
    for c in &cases {
        report.push(
            report
                .case(c.name)
                .u64("n", c.n as u64)
                .f64("median_ms", c.median_ms(), 3)
                .f64_list("all_ms", &c.all_ms, 2)
                .u64("queries", c.queries as u64)
                .f64("per_query_ms", c.median_ms() / c.queries as f64, 6)
                .u64("bytes", c.bytes),
        );
        println!(
            "{:<22} n {:>8}   median {:>9.2} ms   queries {:>4}   per-query {:>10.6} ms   bytes {:>11}",
            c.name,
            c.n,
            c.median_ms(),
            c.queries,
            c.median_ms() / c.queries as f64,
            c.bytes
        );
    }
    write_report("BENCH_serve.json", &report);

    if check {
        let Some(baseline) = baseline else {
            println!("--check: no committed BENCH_serve.json baseline; skipping gate");
            return;
        };
        let mut regressed = false;
        for c in &cases {
            let Some(old) = extract_case_median(&baseline, c.name) else {
                println!("--check: case {} absent from baseline; skipping", c.name);
                continue;
            };
            let fresh = c.median_ms();
            let ratio = fresh / old;
            // Sub-10 ms medians (the fast-path serving cases) sit at timer-noise
            // scale where a 2x ratio is meaningless; gate on absolute slack there.
            let bad = ratio > 2.0 && fresh > old + 10.0;
            let verdict = if bad { "REGRESSED" } else { "ok" };
            println!(
                "--check: {:<22} baseline {:>9.2} ms, fresh {:>9.2} ms, ratio {:>5.2}x  {}",
                c.name, old, fresh, ratio, verdict
            );
            if bad {
                regressed = true;
            }
        }
        if regressed {
            eprintln!("bench_serve regression gate failed (>2x against committed baseline)");
            std::process::exit(1);
        }
    }
}

/// bench_dynamic — machine-readable incremental-mutation baselines
/// (`BENCH_dynamic.json`).
///
/// Measures the dynamic index at the headline `n = 10^6` size (a plain embedded
/// grid, so cell-diagonal inserts stay planar and co-facial): opening the live
/// engine, amortised single-edge insert and delete (256 spread-out cell diagonals
/// per timed call — the paper-scale contrast is a full from-scratch rebuild per
/// mutation, i.e. the `index_build_1m` cost in `BENCH_serve.json`), a mixed churn
/// loop interleaving mutations with `decide(C4)` queries, and the freeze back to
/// the immutable artifact. With `--check`, fresh medians gate >2x regressions
/// against the committed `BENCH_dynamic.json` with the same absolute-slack rule
/// as `bench_serve`.
fn bench_dynamic(check: bool) {
    println!("\n== bench_dynamic: incremental-mutation baselines -> BENCH_dynamic.json ==");
    let baseline = std::fs::read_to_string("BENCH_dynamic.json").ok();
    let mut cases: Vec<ServeBenchCase> = Vec::new();

    let (w, h) = (1000usize, 1000usize);
    let embedding = pg::grid_embedded(w, h);
    let n = embedding.graph.num_vertices();
    let params = IndexParams::default();

    // Open: thaw the scratch build into the live mutable engine.
    let mut all_ms = Vec::new();
    let mut dynamic = None;
    for _ in 0..3 {
        let (built, ms) = timed(|| DynamicPsiIndex::build(&embedding, params));
        all_ms.push(ms);
        dynamic = Some(built);
    }
    let mut dynamic = dynamic.unwrap();
    cases.push(ServeBenchCase {
        name: "dynamic_open_1m",
        n,
        all_ms,
        queries: 1,
        bytes: 0,
    });
    drop(embedding);

    // One round's worth of spread-out cell diagonals: distinct rows (37 and 331
    // are units mod 998), so the cells — and the inserted edges — are distinct.
    let mutations = 256usize;
    let diagonals = |round: usize| -> Vec<(u32, u32)> {
        (0..mutations)
            .map(|i| {
                let r = (37 * i + 331 * round) % (h - 2);
                let c = (53 * i + 577 * round + 11) % (w - 2);
                ((r * w + c) as u32, ((r + 1) * w + c + 1) as u32)
            })
            .collect()
    };

    // Amortised insert / delete: each round inserts 256 diagonals in one timed
    // call, then deletes the same 256 in another, restoring the plain grid.
    // Mutations are local repairs (clustering + face surgery + dirty marks);
    // the deferred batch rebuild is timed as its own case (`dynamic_flush_1m`,
    // the flush of one 256-insert backlog), so the split between mutation
    // latency and maintenance throughput is explicit, not hidden.
    let mut insert_ms = Vec::new();
    let mut flush_ms = Vec::new();
    let mut delete_ms = Vec::new();
    let mut flush_restore_ms = Vec::new();
    for round in 0..3 {
        let edges = diagonals(round);
        let (_, ms) = timed(|| {
            for &(u, v) in &edges {
                dynamic.insert_edge(u, v).expect("planar diagonal rejected");
            }
        });
        insert_ms.push(ms);
        let (_, ms) = timed(|| dynamic.flush());
        flush_ms.push(ms);
        let (_, ms) = timed(|| {
            for &(u, v) in &edges {
                dynamic
                    .delete_edge(u, v)
                    .expect("inserted diagonal missing");
            }
        });
        delete_ms.push(ms);
        // Restoring flush: the deletes return every touched cluster to content
        // the engine decomposed before, so the content-hash decomposition cache
        // should serve most of the rebuild.
        let (_, ms) = timed(|| dynamic.flush());
        flush_restore_ms.push(ms);
    }
    println!(
        "  (dynamic_insert_1m amortised: {:.4} ms/mutation latency + {:.4} ms/mutation \
         deferred flush; rebuild-per-mutation would cost the full dynamic_open_1m median)",
        median_of(&insert_ms) / mutations as f64,
        median_of(&flush_ms) / mutations as f64
    );
    cases.push(ServeBenchCase {
        name: "dynamic_insert_1m",
        n,
        all_ms: insert_ms,
        queries: mutations,
        bytes: 0,
    });
    cases.push(ServeBenchCase {
        name: "dynamic_flush_1m",
        n,
        all_ms: flush_ms,
        queries: mutations,
        bytes: 0,
    });
    cases.push(ServeBenchCase {
        name: "dynamic_delete_1m",
        n,
        all_ms: delete_ms,
        queries: mutations,
        bytes: 0,
    });
    cases.push(ServeBenchCase {
        name: "dynamic_flush_restore_1m",
        n,
        all_ms: flush_restore_ms,
        queries: mutations,
        bytes: 0,
    });

    // Mixed churn: insert-delete pairs with a decide(C4) interleaved every 8
    // pairs — the serve-while-mutating workload.
    {
        let c4 = Pattern::cycle(4);
        let mut all_ms = Vec::new();
        for round in 3..6 {
            let edges = diagonals(round);
            let (_, ms) = timed(|| {
                for (i, &(u, v)) in edges.iter().take(128).enumerate() {
                    dynamic.insert_edge(u, v).expect("planar diagonal rejected");
                    dynamic
                        .delete_edge(u, v)
                        .expect("inserted diagonal missing");
                    if i % 8 == 7 {
                        assert!(dynamic.decide(&c4).expect("C4 query rejected"));
                    }
                }
            });
            all_ms.push(ms);
        }
        cases.push(ServeBenchCase {
            name: "dynamic_churn_mixed_1m",
            n,
            all_ms,
            queries: 256,
            bytes: 0,
        });
    }

    // Freeze: canonicalise the live state back into the immutable artifact
    // (bit-identical to a from-scratch build of the current graph).
    {
        let mut all_ms = Vec::new();
        let mut bytes = 0u64;
        for _ in 0..3 {
            let (frozen, ms) = timed(|| dynamic.freeze());
            all_ms.push(ms);
            bytes = frozen.to_bytes().len() as u64;
        }
        cases.push(ServeBenchCase {
            name: "dynamic_freeze_1m",
            n,
            all_ms,
            queries: 1,
            bytes,
        });
    }

    // Snapshot creation: publish an epoch (O(rounds) Arc bumps; the first
    // publication of an epoch also derives the lazily cached face walks). Each
    // rep dirties the engine first so the publication is genuinely fresh.
    {
        let mut all_ms = Vec::new();
        for _ in 0..3 {
            dynamic
                .insert_edge(0, w as u32 + 1)
                .expect("chord rejected");
            dynamic
                .delete_edge(0, w as u32 + 1)
                .expect("inserted chord missing");
            dynamic.flush(); // keep the flush out of the snapshot timing
            let (_, ms) = timed(|| dynamic.snapshot());
            all_ms.push(ms);
        }
        cases.push(ServeBenchCase {
            name: "snapshot_create_1m",
            n,
            all_ms,
            queries: 1,
            bytes: 0,
        });
    }

    // Reads racing a flush: pin a snapshot, queue a 256-insert backlog, then
    // serve decide_batch from the snapshot while the writer's flush() rebuilds
    // and republishes — the read latency must not absorb the flush.
    {
        let queries = 64usize;
        let patterns: Vec<Pattern> = (0..queries)
            .map(|i| match i % 3 {
                0 => Pattern::cycle(4),
                1 => Pattern::path(3),
                _ => Pattern::star(3),
            })
            .collect();
        let mut all_ms = Vec::new();
        for round in 6..9 {
            let snap = dynamic.snapshot();
            let expected = snap.decide_batch(&patterns); // warm, untimed
            let edges = diagonals(round);
            for &(u, v) in &edges {
                dynamic.insert_edge(u, v).expect("planar diagonal rejected");
            }
            let dynamic_ref = &mut dynamic;
            let read_ms = std::thread::scope(|s| {
                let writer = s.spawn(move || dynamic_ref.flush());
                let (answers, ms) = timed(|| snap.decide_batch(&patterns));
                assert_eq!(answers, expected, "snapshot answers drifted mid-flush");
                writer.join().expect("flush panicked");
                ms
            });
            all_ms.push(read_ms);
            for &(u, v) in &edges {
                dynamic
                    .delete_edge(u, v)
                    .expect("inserted diagonal missing");
            }
            dynamic.flush(); // restore a clean engine
        }
        cases.push(ServeBenchCase {
            name: "dynamic_snapshot_read_during_flush_1m",
            n,
            all_ms,
            queries,
            bytes: 0,
        });
    }

    // Tracing-overhead twin of dynamic_flush_1m: the same 256-insert backlog
    // flushed with the span gate open (flush span + per-round flush.publish
    // events + dp spans inside the rebuild). Inserts and the restoring deletes
    // stay untraced so the case isolates the flush path.
    {
        let mut all_ms = Vec::new();
        for round in 9..12 {
            let edges = diagonals(round);
            for &(u, v) in &edges {
                dynamic.insert_edge(u, v).expect("planar diagonal rejected");
            }
            psi_obs::trace::clear();
            psi_obs::set_tracing(true);
            let (_, ms) = timed(|| dynamic.flush());
            psi_obs::set_tracing(false);
            all_ms.push(ms);
            for &(u, v) in &edges {
                dynamic
                    .delete_edge(u, v)
                    .expect("inserted diagonal missing");
            }
            dynamic.flush(); // restore a clean engine, untraced
        }
        psi_obs::trace::clear();
        cases.push(ServeBenchCase {
            name: "dynamic_flush_1m_traced",
            n,
            all_ms,
            queries: mutations,
            bytes: 0,
        });
    }

    let cache = dynamic.decomp_cache_metrics();
    let mut report = BenchReport::new("bench_dynamic/v3", host_threads());
    report.notes(&format!(
        "incremental index mutation (PR 7) + epoch snapshots (PR 9): \
         per-mutation cost is median_ms / queries; insert/delete are mutation \
         latency (local repair + dirty marks), dynamic_flush_1m is the deferred \
         batch rebuild of one 256-insert backlog, dynamic_flush_restore_1m the \
         rebuild after the matching deletes (content-hash decomposition cache \
         hits; pre-cache v1 flush baseline was 4824.09 ms = 18.84 ms/mutation); \
         this run: {} decomp cache hits / {} misses / {} evictions (cap {}); \
         snapshot_create_1m publishes an epoch, \
         dynamic_snapshot_read_during_flush_1m is pinned-snapshot decide_batch \
         latency while a 256-insert flush republishes concurrently; \
         dynamic_flush_1m_traced is the same backlog flushed with psi_obs \
         tracing enabled (gated at <=10% overhead in --check)",
        cache.hits, cache.misses, cache.evictions, cache.cap,
    ));
    for c in &cases {
        report.push(
            report
                .case(c.name)
                .u64("n", c.n as u64)
                .f64("median_ms", c.median_ms(), 3)
                .f64_list("all_ms", &c.all_ms, 2)
                .u64("queries", c.queries as u64)
                .f64("per_query_ms", c.median_ms() / c.queries as f64, 6)
                .u64("bytes", c.bytes),
        );
        println!(
            "{:<22} n {:>8}   median {:>9.2} ms   queries {:>4}   per-query {:>10.6} ms   bytes {:>11}",
            c.name,
            c.n,
            c.median_ms(),
            c.queries,
            c.median_ms() / c.queries as f64,
            c.bytes
        );
    }
    write_report("BENCH_dynamic.json", &report);

    if check {
        let Some(baseline) = baseline else {
            println!("--check: no committed BENCH_dynamic.json baseline; skipping gate");
            return;
        };
        let mut regressed = false;
        for c in &cases {
            let Some(old) = extract_case_median(&baseline, c.name) else {
                println!("--check: case {} absent from baseline; skipping", c.name);
                continue;
            };
            let fresh = c.median_ms();
            let ratio = fresh / old;
            let bad = ratio > 2.0 && fresh > old + 10.0;
            let verdict = if bad { "REGRESSED" } else { "ok" };
            println!(
                "--check: {:<22} baseline {:>9.2} ms, fresh {:>9.2} ms, ratio {:>5.2}x  {}",
                c.name, old, fresh, ratio, verdict
            );
            if bad {
                regressed = true;
            }
        }
        // In-run tracing overhead, same contract as bench_cover's gate.
        let untraced = cases.iter().find(|c| c.name == "dynamic_flush_1m");
        let traced = cases.iter().find(|c| c.name == "dynamic_flush_1m_traced");
        if let (Some(u), Some(t)) = (untraced, traced) {
            if traced_overhead_gate("dynamic_flush_1m_traced", u.median_ms(), t.median_ms()) {
                regressed = true;
            }
        }
        if regressed {
            eprintln!(
                "bench_dynamic regression gate failed (>2x against committed baseline, \
                 or >10% tracing overhead)"
            );
            std::process::exit(1);
        }
    }
}

/// Pulls `median_ms` of the named case out of a committed `BENCH_cover.json` without
/// a JSON dependency (the format is written by this binary, one case per line).
fn extract_case_median(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let idx = line.find("\"median_ms\": ")?;
    let rest = &line[idx + "\"median_ms\": ".len()..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts an integer-valued field of a named case row from a committed
/// baseline JSON (same line-oriented format the bench writers emit).
fn extract_case_field(json: &str, name: &str, field: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let key = format!("\"{field}\": ");
    let idx = line.find(&key)?;
    let rest = &line[idx + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// One machine-readable measurement of the DP state engine.
struct DpBenchCase {
    name: &'static str,
    all_ms: Vec<f64>,
    states: usize,
    peak_states: usize,
    interned_bytes: usize,
    hits: u64,
    misses: u64,
    /// Rows rewritten to their Inside/Outside mirror (flip canonicalisation).
    flips: usize,
    /// Insertions dropped by flag-dominance pruning.
    dominated: usize,
    /// Match-state interns redirected to another automorphism-orbit representative.
    orbit_merges: usize,
}

impl DpBenchCase {
    fn median_ms(&self) -> f64 {
        median_of(&self.all_ms)
    }
}

/// bench_dp — machine-readable DP state-engine baselines (`BENCH_dp.json`).
///
/// Each case reports the median wall-clock of several runs plus the interned-state
/// accounting of the last run (states and bytes are deterministic per case, so one
/// sample suffices for them), including the separating-DP pruning counters (flips
/// canonicalised, rows dominated, orbit merges). The JSON is the perf trajectory
/// future PRs diff against; CI's nightly job uploads it as an artifact. With
/// `--check`, fresh results are gated against the committed baseline: a >2x
/// wall-time regression, a >1.5x interned-state regression, or pruning counters
/// collapsing to zero on a case where the baseline had them all exit non-zero.
fn bench_dp(check: bool) {
    println!("\n== bench_dp: DP state-engine baselines -> BENCH_dp.json ==");
    let baseline = std::fs::read_to_string("BENCH_dp.json").ok();
    let mut cases: Vec<DpBenchCase> = Vec::new();

    // Plain + parallel DP: decision tables on a mid-size triangulated grid.
    for (name, side, pattern) in [
        ("dp_parallel_c4_grid24", 24usize, Pattern::cycle(4)),
        ("dp_parallel_c6_grid12", 12usize, Pattern::cycle(6)),
    ] {
        let g = generators::triangulated_grid(side, side);
        let td = min_degree_decomposition(&g);
        let btd = BinaryTreeDecomposition::from_decomposition(&td);
        let mut all_ms = Vec::new();
        let mut last = None;
        for _ in 0..3 {
            let (res, stats) = {
                let start = Instant::now();
                let out = run_parallel(&g, &pattern, &btd, ParallelDpConfig::default());
                all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
                out
            };
            last = Some((res, stats));
        }
        let (res, stats) = last.unwrap();
        cases.push(DpBenchCase {
            name,
            all_ms,
            states: res.total_states,
            peak_states: res.tables.iter().map(|t| t.len()).max().unwrap_or(0),
            interned_bytes: stats.arena.bytes,
            hits: stats.arena.hits,
            misses: stats.arena.misses,
            flips: 0,
            dominated: 0,
            orbit_merges: 0,
        });
    }

    // Separating DP: an adversarial no-instance C6 search (S = adjacent pair, can never
    // be separated, so every table is materialised in full) and the C8 grid search.
    {
        let g = generators::triangulated_grid(5, 5);
        let n = g.num_vertices();
        let mut in_s = vec![false; n];
        in_s[0] = true;
        in_s[1] = true;
        let allowed = vec![true; n];
        let inst = SeparatingInstance {
            graph: &g,
            in_s: &in_s,
            allowed: &allowed,
        };
        cases.push(bench_sep_case("sep_c6_adversarial_g5", &inst, 6, 3));
    }
    {
        let g = generators::grid(4, 4);
        let n = g.num_vertices();
        let in_s = vec![true; n];
        let allowed = vec![true; n];
        let inst = SeparatingInstance {
            graph: &g,
            in_s: &in_s,
            allowed: &allowed,
        };
        cases.push(bench_sep_case("sep_c8_grid4", &inst, 8, 3));
    }

    // Connectivity: the full pipeline on the 4-connected octahedron (two exhaustive
    // no-instance searches before the separating C8 is found), the 5-connected
    // icosahedron (three exhaustive searches — the worst case of Section 5.2), and a
    // 3-connected stacked triangulation whose verdict comes from the C6 search (one
    // exhaustive C4 pass, then a C6 witness — the `k = 6` family of the ROADMAP).
    for (name, e, runs) in [
        ("conn_octahedron", pg::octahedron(), 3usize),
        ("conn_icosahedron", pg::icosahedron(), 3),
        (
            "conn_stacked64_c6",
            pg::stacked_triangulation_embedded(64, 3),
            3,
        ),
    ] {
        let mut all_ms = Vec::new();
        let mut last = None;
        for _ in 0..runs {
            let start = Instant::now();
            let result = vertex_connectivity(&e, ConnectivityMode::WholeGraph, 1);
            all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            last = Some(result);
        }
        let result = last.unwrap();
        let stats = result.stats;
        cases.push(DpBenchCase {
            name,
            all_ms,
            states: result.states_explored,
            peak_states: stats.peak_node_states,
            interned_bytes: stats.arena.bytes,
            hits: stats.arena.hits,
            misses: stats.arena.misses,
            flips: stats.flips_canonicalised,
            dominated: stats.dominated_dropped,
            orbit_merges: stats.orbit_merges,
        });
    }

    let mut report = BenchReport::new("bench_dp/v2", host_threads());
    for c in &cases {
        report.push(
            report
                .case(c.name)
                .f64("median_ms", c.median_ms(), 2)
                .f64_list("all_ms", &c.all_ms, 2)
                .u64("states", c.states as u64)
                .u64("peak_states", c.peak_states as u64)
                .u64("interned_bytes", c.interned_bytes as u64)
                .u64("hits", c.hits)
                .u64("misses", c.misses)
                .u64("flips", c.flips as u64)
                .u64("dominated", c.dominated as u64)
                .u64("orbit_merges", c.orbit_merges as u64),
        );
        println!(
            "{:<26} median {:>10.2} ms   states {:>9}   peak {:>8}   pruned {:>9}",
            c.name,
            c.median_ms(),
            c.states,
            c.peak_states,
            c.flips + c.dominated + c.orbit_merges
        );
    }
    write_report("BENCH_dp.json", &report);

    if check {
        let Some(baseline) = baseline else {
            println!("--check: no committed BENCH_dp.json baseline; skipping gate");
            return;
        };
        let mut regressed = false;
        for c in &cases {
            let Some(old_ms) = extract_case_median(&baseline, c.name) else {
                println!("--check: case {} absent from baseline; skipping", c.name);
                continue;
            };
            let fresh_ms = c.median_ms();
            let ratio = fresh_ms / old_ms;
            let mut verdicts: Vec<&str> = Vec::new();
            if ratio > 2.0 {
                verdicts.push("TIME REGRESSED");
            }
            // State-space gate: the interned-state count is deterministic per case,
            // so any real growth is a pruning regression, not noise. 1.5x of slack
            // tolerates intentional case re-shaping without masking a lost lever.
            if let Some(old_states) = extract_case_field(&baseline, c.name, "states") {
                if old_states > 0.0 && c.states as f64 > old_states * 1.5 {
                    verdicts.push("STATES REGRESSED");
                }
            }
            // Counter gate: a case whose baseline shows the pruning levers firing
            // must keep firing them — all three collapsing to zero means a lever
            // got disconnected even if wall time happens to stay flat.
            let old_pruned: f64 = ["flips", "dominated", "orbit_merges"]
                .iter()
                .filter_map(|f| extract_case_field(&baseline, c.name, f))
                .sum();
            if old_pruned > 0.0 && c.flips + c.dominated + c.orbit_merges == 0 {
                verdicts.push("PRUNING COUNTERS COLLAPSED");
            }
            let verdict = if verdicts.is_empty() {
                "ok".to_string()
            } else {
                verdicts.join(" + ")
            };
            println!(
                "--check: {:<26} baseline {:>9.2} ms, fresh {:>9.2} ms, ratio {:>5.2}x, \
                 states {:>9}  {}",
                c.name, old_ms, fresh_ms, ratio, c.states, verdict
            );
            if !verdicts.is_empty() {
                regressed = true;
            }
        }
        if regressed {
            eprintln!(
                "bench_dp regression gate failed (wall time >2x, states >1.5x, or \
                 pruning counters collapsed against committed baseline)"
            );
            std::process::exit(1);
        }
    }
}

fn bench_sep_case(
    name: &'static str,
    inst: &SeparatingInstance<'_>,
    cycle: usize,
    runs: usize,
) -> DpBenchCase {
    let pattern = Pattern::cycle(cycle);
    let mut all_ms = Vec::new();
    let mut last = None;
    for _ in 0..runs {
        let start = Instant::now();
        let out = find_separating_occurrence_with_stats(inst, &pattern);
        all_ms.push(start.elapsed().as_secs_f64() * 1000.0);
        last = Some(out.1);
    }
    let stats = last.unwrap();
    DpBenchCase {
        name,
        all_ms,
        states: stats.sep_states,
        peak_states: stats.peak_node_states,
        interned_bytes: stats.arena.bytes,
        hits: stats.arena.hits,
        misses: stats.arena.misses,
        flips: stats.flips_canonicalised,
        dominated: stats.dominated_dropped,
        orbit_merges: stats.orbit_merges,
    }
}

/// T1 — Table 1 analogue: decision time of this paper's pipeline vs. the baselines.
fn t1_decision() {
    println!("\n== T1: decision time [ms], this paper vs. baselines ==");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>12}",
        "pattern", "n", "this paper", "eppstein-seq", "ullmann"
    );
    for n in [4096usize, 16384] {
        let g = target_with_n(n);
        for (name, p) in table1_patterns() {
            let query = SubgraphIsomorphism::new(p.clone());
            let (_, ours) = timed(|| query.decide(&g));
            let (_, epp) = timed(|| eppstein_sequential_decide(&p, &g));
            let (_, ull) = timed(|| ullmann_decide(&p, &g));
            println!(
                "{:<10} {:>8} {:>12.2} {:>14.2} {:>12.2}",
                name,
                g.num_vertices(),
                ours,
                epp,
                ull
            );
        }
    }
}

/// F1 — Theorem 2.4: cover quality (width, multiplicity, retention).
fn f1_cover() {
    println!("\n== F1: k-d cover quality (Theorem 2.4) ==");
    println!(
        "{:>8} {:>4} {:>4} {:>12} {:>14} {:>12}",
        "n", "k", "d", "max width", "max per-vertex", "retention"
    );
    for side in [64usize, 128] {
        let (k, d) = (6usize, 3usize);
        let (g, planted) = generators::grid_with_planted_cycle(side, side, k);
        let trials = 20;
        let mut retained = 0;
        let mut max_width = 0usize;
        let mut max_mult = 0usize;
        for s in 0..trials {
            let cover = build_cover(&g, k, d, s);
            if cover.some_piece_contains(&planted) {
                retained += 1;
            }
            max_mult = max_mult.max(cover.max_pieces_per_vertex(g.num_vertices()));
            if s == 0 {
                for piece in &cover.pieces {
                    if piece.num_vertices() > 2 {
                        max_width = max_width.max(min_degree_decomposition(&piece.graph).width());
                    }
                }
            }
        }
        println!(
            "{:>8} {:>4} {:>4} {:>12} {:>14} {:>11.2}",
            g.num_vertices(),
            k,
            d,
            format!("{} (<= {})", max_width, 3 * (d + 1)),
            format!("{} (<= {})", max_mult, d + 1),
            retained as f64 / trials as f64
        );
    }
}

/// F2 — Lemma 2.3: clustering edge-cut probability and diameter.
fn f2_cluster() {
    println!("\n== F2: exponential start time clustering (Lemma 2.3) ==");
    println!(
        "{:>8} {:>6} {:>16} {:>10} {:>16}",
        "n", "beta", "crossing frac", "1/beta", "max radius"
    );
    let g = generators::triangulated_grid(96, 96);
    for beta in [2.0f64, 4.0, 8.0, 16.0] {
        let trials = 10;
        let mut frac = 0.0;
        let mut radius = 0;
        for s in 0..trials {
            let c = cluster(&g, beta, s);
            frac += c.crossing_fraction(&g);
            radius = radius.max(c.max_cluster_radius(&g));
        }
        println!(
            "{:>8} {:>6.1} {:>16.4} {:>10.4} {:>16}",
            g.num_vertices(),
            beta,
            frac / trials as f64,
            1.0 / beta,
            radius
        );
    }
}

/// F3 — Theorem 2.1: near-linear scaling in n, up to the paper's million-vertex
/// headline size (the sharded cover pipeline opened the top end of the sweep).
fn f3_scaling_n() {
    println!("\n== F3: scaling in n (Theorem 2.1), pattern = C4 ==");
    println!(
        "{:>8} {:>12} {:>22}",
        "n", "time [ms]", "time / (n log n) [us]"
    );
    let p = Pattern::cycle(4);
    for n in size_sweep(psi_bench::MILLION) {
        let g = target_with_n(n);
        let query = SubgraphIsomorphism::new(p.clone());
        let (_, ms) = timed(|| query.decide(&g));
        let nlogn = g.num_vertices() as f64 * (g.num_vertices() as f64).log2();
        println!(
            "{:>8} {:>12.2} {:>22.4}",
            g.num_vertices(),
            ms,
            ms * 1000.0 / nlogn
        );
    }
}

/// F4 — Corollary 2.2: dependence on pattern size k.
fn f4_scaling_k() {
    println!("\n== F4: scaling in pattern size k (cycles C3..C8), n ~ 16k ==");
    println!("{:>4} {:>12}", "k", "time [ms]");
    let g = target_with_n(16_384);
    for k in 3..=8usize {
        let query = SubgraphIsomorphism::new(Pattern::cycle(k));
        let (_, ms) = timed(|| query.decide(&g));
        println!("{:>4} {:>12.2}", k, ms);
    }
}

/// F5 — Theorem 4.2: listing work grows with the number of occurrences.
fn f5_listing() {
    println!("\n== F5: listing all occurrences (Theorem 4.2), pattern = triangle ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "n", "mappings", "images", "time [ms]"
    );
    for side in [8usize, 16, 24] {
        let g = generators::triangulated_grid(side, side);
        let query = SubgraphIsomorphism::new(Pattern::triangle());
        let (occs, ms) = timed(|| query.list_all(&g));
        println!(
            "{:>8} {:>12} {:>12} {:>12.2}",
            g.num_vertices(),
            occs.len(),
            planar_subiso::count_distinct_images(&occs),
            ms
        );
    }
}

/// F6 — Lemma 4.1: disconnected pattern overhead.
fn f6_disconnected() {
    println!("\n== F6: disconnected patterns (Lemma 4.1) ==");
    println!("{:<24} {:>12}", "pattern", "time [ms]");
    let g = generators::triangulated_grid(48, 48);
    let patterns: Vec<(&str, Pattern)> = vec![
        ("triangle (1 comp)", Pattern::triangle()),
        (
            "2 disjoint edges",
            Pattern::from_edges(4, &[(0, 1), (2, 3)]),
        ),
        (
            "triangle + edge",
            Pattern::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]),
        ),
        (
            "3 disjoint edges",
            Pattern::from_edges(6, &[(0, 1), (2, 3), (4, 5)]),
        ),
    ];
    for (name, p) in patterns {
        let query = SubgraphIsomorphism::new(p);
        let (found, ms) = timed(|| query.find_one(&g).is_some());
        println!("{:<24} {:>12.2}   found={found}", name, ms);
    }
}

/// F7 — Lemma 5.2: vertex connectivity, correctness and timing vs. the flow baseline.
fn f7_connectivity() {
    println!("\n== F7: planar vertex connectivity (Lemma 5.2) ==");
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>12} {:>12}",
        "graph", "n", "ours", "flow", "ours [ms]", "flow [ms]"
    );
    let cases: Vec<(&str, psi_planar::Embedding)> = vec![
        ("cycle C32", pg::cycle_embedded(32)),
        ("wheel W24", pg::wheel_embedded(24)),
        ("double wheel (rim 8)", pg::double_wheel(8)),
        ("octahedron", pg::octahedron()),
        ("icosahedron", pg::icosahedron()),
        (
            "triangulated grid 10x10",
            pg::triangulated_grid_embedded(10, 10),
        ),
        (
            "stacked triangulation 30",
            pg::stacked_triangulation_embedded(30, 7),
        ),
    ];
    for (name, e) in cases {
        let (ours, t_ours) =
            timed(|| vertex_connectivity(&e, ConnectivityMode::WholeGraph, 1).connectivity);
        let (flow, t_flow) = timed(|| flow_vertex_connectivity(&e.graph, 6));
        println!(
            "{:<28} {:>6} {:>6} {:>6} {:>12.2} {:>12.2}",
            name,
            e.graph.num_vertices(),
            ours,
            flow,
            t_ours,
            t_flow
        );
    }
}

/// F8 — depth proxy: strong scaling over rayon threads.
///
/// Each configuration is measured several times and reported as the median: `decide`
/// exits early through `find_map_any`, so a single cold measurement mostly reflects
/// which cover piece happened to contain the first hit, not pool throughput.
fn f8_threads() {
    println!("\n== F8: strong scaling (depth proxy), decide C4 on n ~ 65k ==");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("host cores: {cores} (speedup above the core count is not expected)");
    println!(
        "{:>8} {:>16} {:>10}",
        "threads", "median [ms] /5", "speedup"
    );
    let g = target_with_n(65_536);
    let p = Pattern::cycle(4);
    let mut base = None;
    for threads in psi_bench::f8_thread_sweep() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let query = SubgraphIsomorphism::new(p.clone());
        let mut samples: Vec<f64> = (0..5)
            .map(|_| timed(|| pool.install(|| query.decide(&g))).1)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ms = samples[samples.len() / 2];
        let speedup = base.map(|b: f64| b / ms).unwrap_or(1.0);
        if base.is_none() {
            base = Some(ms);
        }
        println!("{:>8} {:>16.2} {:>10.2}", threads, ms, speedup);
    }
}

/// F9 — Lemma 3.3: rounds with and without shortcuts.
fn f9_shortcuts() {
    println!("\n== F9: shortcut ablation (Lemma 3.3), path target, pattern = P4 ==");
    println!(
        "{:>8} {:>18} {:>18}",
        "n", "rounds (shortcut)", "rounds (naive)"
    );
    for n in [256usize, 1024, 4096] {
        let g = generators::path(n);
        let p = Pattern::path(4);
        let td = min_degree_decomposition(&g);
        let btd = BinaryTreeDecomposition::from_decomposition(&td);
        let (_, fast) = planar_subiso::run_parallel(
            &g,
            &p,
            &btd,
            planar_subiso::ParallelDpConfig {
                use_shortcuts: true,
            },
        );
        let (_, slow) = planar_subiso::run_parallel(
            &g,
            &p,
            &btd,
            planar_subiso::ParallelDpConfig {
                use_shortcuts: false,
            },
        );
        println!(
            "{:>8} {:>18} {:>18}",
            n, fast.max_rounds_per_path, slow.max_rounds_per_path
        );
    }
}

/// F10 — Lemma 3.2: number of path layers vs. log2 n.
fn f10_path_layers() {
    println!("\n== F10: tree-into-paths layers (Lemma 3.2) ==");
    println!(
        "{:<24} {:>8} {:>8} {:>10}",
        "tree", "nodes", "layers", "log2(n)+1"
    );
    let shapes: Vec<(&str, Vec<usize>)> = vec![
        ("path(4095)", {
            let mut parent = vec![usize::MAX];
            for v in 1..4095 {
                parent.push(v - 1);
            }
            parent
        }),
        ("balanced(4095)", {
            let mut parent = vec![usize::MAX];
            for v in 1..4095 {
                parent.push((v - 1) / 2);
            }
            parent
        }),
        ("random(4095)", {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
            let mut parent = vec![usize::MAX];
            for v in 1..4095usize {
                parent.push(rng.gen_range(0..v));
            }
            parent
        }),
    ];
    for (name, parent) in shapes {
        let n = parent.len();
        let tree = RootedTree::from_parents(parent);
        let pd = tree_into_paths(&tree);
        println!(
            "{:<24} {:>8} {:>8} {:>10}",
            name,
            n,
            pd.num_layers(),
            (n as f64).log2().floor() as usize + 1
        );
    }
}
