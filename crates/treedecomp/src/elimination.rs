//! Elimination-ordering heuristics for building tree decompositions.
//!
//! A perfect elimination game yields a valid tree decomposition of any graph: eliminate
//! vertices one by one, each time turning the current neighbourhood of the eliminated
//! vertex into a clique; the bag of an eliminated vertex is the vertex plus its
//! neighbourhood at elimination time, and it hangs off the bag of the first of those
//! neighbours to be eliminated later. The width equals the largest such neighbourhood.
//!
//! The paper obtains width-`3d` decompositions of `d`-level planar slabs from the
//! Baker/Eppstein construction and width-`8τ+7` decompositions from Lagergren's parallel
//! algorithm; as documented in `DESIGN.md` we substitute the classical min-degree and
//! min-fill heuristics, which always produce *valid* decompositions (checked by
//! [`TreeDecomposition::validate`]) and empirically stay within the `3d` bound on the
//! cover subgraphs (experiment F1). Only constants in the running time depend on this
//! substitution; correctness of the subgraph-isomorphism DP does not.

use crate::decomposition::TreeDecomposition;
use psi_graph::{CsrGraph, Vertex};
use std::collections::{BTreeSet, HashSet};

/// Which greedy criterion selects the next vertex to eliminate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EliminationStrategy {
    /// Eliminate a vertex of minimum current degree (fast, good on planar slabs).
    MinDegree,
    /// Eliminate a vertex adding the fewest fill edges (slower, usually smaller width).
    MinFill,
}

struct EliminationGame {
    /// Current neighbourhoods (as sets) of the not-yet-eliminated vertices.
    adj: Vec<BTreeSet<Vertex>>,
    eliminated: Vec<bool>,
}

impl EliminationGame {
    fn new(graph: &CsrGraph) -> Self {
        let adj = (0..graph.num_vertices())
            .map(|v| graph.neighbors(v as Vertex).iter().copied().collect())
            .collect();
        EliminationGame {
            adj,
            eliminated: vec![false; graph.num_vertices()],
        }
    }

    fn fill_cost(&self, v: usize) -> usize {
        let neigh: Vec<Vertex> = self.adj[v].iter().copied().collect();
        let mut missing = 0;
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                if !self.adj[neigh[i] as usize].contains(&neigh[j]) {
                    missing += 1;
                }
            }
        }
        missing
    }

    fn eliminate(&mut self, v: usize) -> Vec<Vertex> {
        let neigh: Vec<Vertex> = self.adj[v].iter().copied().collect();
        // make the neighbourhood a clique
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                let (a, b) = (neigh[i] as usize, neigh[j] as usize);
                self.adj[a].insert(neigh[j]);
                self.adj[b].insert(neigh[i]);
            }
        }
        for &w in &neigh {
            self.adj[w as usize].remove(&(v as Vertex));
        }
        self.adj[v].clear();
        self.eliminated[v] = true;
        neigh
    }
}

/// Bucket priority queue over current degrees: the next min-degree vertex is popped
/// from the lowest non-empty bucket (smallest vertex id first, matching the scan-based
/// selection's `(degree, v)` tie-break exactly), and degree changes move vertices
/// between buckets. Selection over the whole elimination costs `O((n + fill) log n)`
/// instead of the naive `O(n²)` per-step scans — the cover pipeline decomposes many
/// thousands of batched pieces per query, so selection must stay near-linear.
struct DegreeBuckets {
    buckets: Vec<BTreeSet<usize>>,
    deg: Vec<usize>,
    min_deg: usize,
}

impl DegreeBuckets {
    fn new(game: &EliminationGame) -> Self {
        let n = game.adj.len();
        let mut buckets: Vec<BTreeSet<usize>> = Vec::new();
        let mut deg = vec![0usize; n];
        for (v, slot) in deg.iter_mut().enumerate() {
            let d = game.adj[v].len();
            *slot = d;
            if buckets.len() <= d {
                buckets.resize_with(d + 1, BTreeSet::new);
            }
            buckets[d].insert(v);
        }
        DegreeBuckets {
            buckets,
            deg,
            min_deg: 0,
        }
    }

    fn pop_min(&mut self) -> usize {
        loop {
            if let Some(&v) = self.buckets.get(self.min_deg).and_then(|b| b.first()) {
                self.buckets[self.min_deg].remove(&v);
                return v;
            }
            self.min_deg += 1;
            assert!(self.min_deg < self.buckets.len(), "no vertex remains");
        }
    }

    fn update(&mut self, v: usize, new_deg: usize) {
        let old = self.deg[v];
        if old == new_deg {
            return;
        }
        self.buckets[old].remove(&v);
        if self.buckets.len() <= new_deg {
            self.buckets.resize_with(new_deg + 1, BTreeSet::new);
        }
        self.buckets[new_deg].insert(v);
        self.deg[v] = new_deg;
        self.min_deg = self.min_deg.min(new_deg);
    }
}

/// Builds a tree decomposition from a greedy elimination ordering.
pub fn elimination_decomposition(
    graph: &CsrGraph,
    strategy: EliminationStrategy,
) -> TreeDecomposition {
    let n = graph.num_vertices();
    if n == 0 {
        return TreeDecomposition::new(vec![Vec::new()], Vec::new(), 0);
    }
    let mut game = EliminationGame::new(graph);
    // order[i] = i-th eliminated vertex; bag_of_vertex[v] = index of the bag created for v
    let mut order = Vec::with_capacity(n);
    let mut position = vec![usize::MAX; n];
    let mut bags: Vec<Vec<Vertex>> = Vec::with_capacity(n);
    let mut neighbours_at_elim: Vec<Vec<Vertex>> = Vec::with_capacity(n);
    let mut degree_queue = match strategy {
        EliminationStrategy::MinDegree => Some(DegreeBuckets::new(&game)),
        EliminationStrategy::MinFill => None,
    };

    for step in 0..n {
        // pick next vertex
        let candidate = match &mut degree_queue {
            Some(queue) => queue.pop_min(),
            None => (0..n)
                .filter(|&v| !game.eliminated[v])
                .min_by_key(|&v| (game.fill_cost(v), game.adj[v].len(), v))
                .expect("some vertex remains"),
        };
        position[candidate] = step;
        order.push(candidate as Vertex);
        let neigh = game.eliminate(candidate);
        if let Some(queue) = &mut degree_queue {
            // Only the eliminated vertex's neighbourhood changes degree (it loses the
            // edge to the eliminated vertex and gains the clique fill edges).
            for &w in &neigh {
                queue.update(w as usize, game.adj[w as usize].len());
            }
        }
        let mut bag = neigh.clone();
        bag.push(candidate as Vertex);
        bags.push(bag);
        neighbours_at_elim.push(neigh);
    }

    // Tree edges: the bag of vertex v connects to the bag of the earliest-eliminated
    // neighbour that is eliminated after v (the standard construction).
    let mut tree_edges = Vec::with_capacity(n.saturating_sub(1));
    for (step, neighbours) in neighbours_at_elim.iter().enumerate() {
        let later = neighbours
            .iter()
            .copied()
            .filter(|&w| position[w as usize] > step)
            .min_by_key(|&w| position[w as usize]);
        if let Some(w) = later {
            tree_edges.push((step, position[w as usize]));
        } else if step + 1 < n {
            // Vertex had no later neighbours (its component is finished); attach to the
            // next bag to keep the decomposition a single tree.
            tree_edges.push((step, step + 1));
        }
    }
    TreeDecomposition::new(bags, tree_edges, n)
}

/// Min-degree heuristic decomposition.
pub fn min_degree_decomposition(graph: &CsrGraph) -> TreeDecomposition {
    elimination_decomposition(graph, EliminationStrategy::MinDegree)
}

/// Min-fill heuristic decomposition.
pub fn min_fill_decomposition(graph: &CsrGraph) -> TreeDecomposition {
    elimination_decomposition(graph, EliminationStrategy::MinFill)
}

/// Upper bound on the treewidth: the width of the min-degree decomposition.
pub fn treewidth_upper_bound(graph: &CsrGraph) -> usize {
    min_degree_decomposition(graph).width()
}

/// Sanity helper used by tests: a set of vertices forming a clique forces width ≥ |clique| − 1.
pub fn clique_lower_bound(graph: &CsrGraph) -> usize {
    // greedy: find a maximal clique by repeatedly adding the highest-degree compatible vertex
    let mut best = 0;
    for start in 0..graph.num_vertices() as Vertex {
        let mut clique: Vec<Vertex> = vec![start];
        let mut candidates: HashSet<Vertex> = graph.neighbors(start).iter().copied().collect();
        while let Some(&next) = candidates.iter().max_by_key(|&&v| graph.degree(v)) {
            clique.push(next);
            let neigh: HashSet<Vertex> = graph.neighbors(next).iter().copied().collect();
            candidates = candidates.intersection(&neigh).copied().collect();
            candidates.remove(&next);
        }
        best = best.max(clique.len().saturating_sub(1));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generators;

    #[test]
    fn tree_has_width_one() {
        let g = generators::random_tree(60, 3);
        let td = min_degree_decomposition(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn cycle_has_width_two() {
        let g = generators::cycle(20);
        let td = min_degree_decomposition(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 2);
    }

    #[test]
    fn complete_graph_width() {
        let g = generators::complete(6);
        let td = min_fill_decomposition(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 5);
    }

    #[test]
    fn grid_width_is_small() {
        let g = generators::grid(6, 6);
        let td = min_fill_decomposition(&g);
        td.validate(&g).unwrap();
        // treewidth of the 6x6 grid is 6; heuristics may overshoot slightly
        assert!(td.width() >= 6 && td.width() <= 9, "width {}", td.width());
    }

    #[test]
    fn min_fill_not_worse_than_min_degree_on_small_planar() {
        let g = generators::random_stacked_triangulation(40, 11);
        let a = min_degree_decomposition(&g);
        let b = min_fill_decomposition(&g);
        a.validate(&g).unwrap();
        b.validate(&g).unwrap();
        assert!(b.width() <= a.width() + 2);
    }

    #[test]
    fn disconnected_graph_still_valid() {
        let a = generators::cycle(5);
        let b = generators::path(4);
        let g = generators::disjoint_union(&[&a, &b]);
        let td = min_degree_decomposition(&g);
        td.validate(&g).unwrap();
    }

    #[test]
    fn width_bounds_are_consistent() {
        let g = generators::triangulated_grid(5, 5);
        let ub = treewidth_upper_bound(&g);
        let lb = clique_lower_bound(&g);
        assert!(lb <= ub, "lower bound {lb} exceeds upper bound {ub}");
        assert!(lb >= 2); // contains triangles
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = CsrGraph::empty(1);
        let td = min_degree_decomposition(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 0);

        let g0 = CsrGraph::empty(0);
        let td0 = min_degree_decomposition(&g0);
        td0.validate(&g0).unwrap();
    }
}
