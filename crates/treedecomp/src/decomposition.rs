//! Tree decomposition data structure and validity checking.

use psi_graph::{CsrGraph, UnionFind, Vertex};

/// A tree decomposition of a graph: a tree whose nodes ("bags") are vertex subsets.
///
/// The three defining conditions (Section 1.1 of the paper):
/// 1. every graph vertex appears in at least one bag,
/// 2. for every vertex the bags containing it form a contiguous subtree,
/// 3. for every graph edge some bag contains both endpoints.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    /// The bags; `bags[i]` is sorted and deduplicated.
    pub bags: Vec<Vec<Vertex>>,
    /// Undirected tree edges between bag indices.
    pub tree_edges: Vec<(usize, usize)>,
    /// Number of vertices of the decomposed graph.
    pub num_graph_vertices: usize,
}

impl TreeDecomposition {
    /// Creates a decomposition, normalising each bag to sorted/deduplicated form.
    pub fn new(
        mut bags: Vec<Vec<Vertex>>,
        tree_edges: Vec<(usize, usize)>,
        num_graph_vertices: usize,
    ) -> Self {
        for b in bags.iter_mut() {
            b.sort_unstable();
            b.dedup();
        }
        TreeDecomposition {
            bags,
            tree_edges,
            num_graph_vertices,
        }
    }

    /// A single-bag decomposition containing all vertices (width `n − 1`).
    pub fn trivial(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        TreeDecomposition::new(vec![(0..n as Vertex).collect()], Vec::new(), n)
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Width of the decomposition: `max |bag| − 1` (`0` for an empty decomposition).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Adjacency lists of the decomposition tree.
    pub fn tree_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Checks the three tree-decomposition conditions plus tree-ness of the bag graph.
    /// Returns `Ok(())` or a human-readable description of the first violation.
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), String> {
        let nb = self.bags.len();
        if nb == 0 {
            return if graph.num_vertices() == 0 && graph.num_edges() == 0 {
                Ok(())
            } else {
                Err("empty decomposition of a nonempty graph".into())
            };
        }
        // The decomposition tree must be a tree (connected, nb-1 edges).
        if self.tree_edges.len() != nb - 1 {
            return Err(format!(
                "decomposition tree has {} edges, expected {}",
                self.tree_edges.len(),
                nb - 1
            ));
        }
        let mut uf = UnionFind::new(nb);
        for &(a, b) in &self.tree_edges {
            if a >= nb || b >= nb {
                return Err(format!("tree edge ({a},{b}) out of range"));
            }
            if !uf.union(a, b) {
                return Err(format!("tree edge ({a},{b}) creates a cycle"));
            }
        }
        if nb > 1 && uf.num_sets() != 1 {
            return Err("decomposition tree is disconnected".into());
        }
        // Condition 1: every vertex covered.
        let n = graph.num_vertices();
        let mut covered = vec![false; n];
        for bag in &self.bags {
            for &v in bag {
                if (v as usize) >= n {
                    return Err(format!("bag contains out-of-range vertex {v}"));
                }
                covered[v as usize] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(format!("vertex {v} is in no bag"));
        }
        // Condition 3: every edge in some bag.
        'edges: for (u, v) in graph.edges() {
            for bag in &self.bags {
                if bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok() {
                    continue 'edges;
                }
            }
            return Err(format!("edge ({u},{v}) is in no bag"));
        }
        // Condition 2: contiguity. For each vertex, the bags containing it must induce a
        // connected subtree.
        let adj = self.tree_adjacency();
        for v in 0..n as Vertex {
            let holders: Vec<usize> = (0..nb)
                .filter(|&i| self.bags[i].binary_search(&v).is_ok())
                .collect();
            if holders.is_empty() {
                continue;
            }
            let holder_set: std::collections::HashSet<usize> = holders.iter().copied().collect();
            // BFS within holder bags.
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(b) = stack.pop() {
                for &nbq in &adj[b] {
                    if holder_set.contains(&nbq) && seen.insert(nbq) {
                        stack.push(nbq);
                    }
                }
            }
            if seen.len() != holders.len() {
                return Err(format!("bags containing vertex {v} are not contiguous"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generators;

    /// The example decomposition from Figure 1 of the paper.
    fn figure1() -> (CsrGraph, TreeDecomposition) {
        // vertices a..g = 0..6
        let (a, b, c, d, e, f, g) = (0, 1, 2, 3, 4, 5, 6);
        let mut gb = psi_graph::GraphBuilder::new(7);
        for &(u, v) in &[
            (a, b),
            (a, c),
            (b, c),
            (c, d),
            (c, e),
            (d, e),
            (c, f),
            (e, f),
            (a, f),
            (f, g),
            (a, g),
        ] {
            gb.add_edge(u, v);
        }
        let graph = gb.build();
        let td = TreeDecomposition::new(
            vec![
                vec![c, e, f],
                vec![c, d, e],
                vec![a, c, f],
                vec![a, b, c],
                vec![a, f, g],
            ],
            vec![(0, 1), (0, 2), (2, 3), (2, 4)],
            7,
        );
        (graph, td)
    }

    #[test]
    fn figure1_decomposition_is_valid_of_width_2() {
        let (g, td) = figure1();
        assert_eq!(td.width(), 2);
        td.validate(&g).unwrap();
    }

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = generators::triangulated_grid(4, 4);
        let td = TreeDecomposition::trivial(&g);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 15);
    }

    #[test]
    fn detects_missing_vertex() {
        let g = generators::path(3);
        let td = TreeDecomposition::new(vec![vec![0, 1]], vec![], 3);
        assert!(td.validate(&g).unwrap_err().contains("vertex 2"));
    }

    #[test]
    fn detects_missing_edge() {
        let g = generators::cycle(3);
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![(0, 1), (1, 2)],
            3,
        );
        // all vertices covered, all edges covered actually... 0-1 in bag0, 1-2 in bag1, 0-2 in bag2: covered.
        // but vertex 0 appears in bags 0 and 2 which are not adjacent -> contiguity violation
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("contiguous"), "{err}");
    }

    #[test]
    fn detects_non_tree() {
        let g = generators::path(2);
        let td = TreeDecomposition::new(
            vec![vec![0, 1], vec![0, 1], vec![0, 1]],
            vec![(0, 1), (1, 2), (0, 2)],
            2,
        );
        assert!(td.validate(&g).is_err());
    }

    #[test]
    fn detects_missing_edge_cover() {
        let g = generators::complete(3);
        let td = TreeDecomposition::new(vec![vec![0, 1], vec![1, 2]], vec![(0, 1)], 3);
        let err = td.validate(&g).unwrap_err();
        assert!(err.contains("edge"), "{err}");
    }

    #[test]
    fn path_graph_width_one_decomposition() {
        let g = generators::path(5);
        let bags = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]];
        let td = TreeDecomposition::new(bags, vec![(0, 1), (1, 2), (2, 3)], 5);
        td.validate(&g).unwrap();
        assert_eq!(td.width(), 1);
    }
}
