//! Rooted, binarised tree decompositions.
//!
//! The partial-match dynamic program (paper Section 3) assumes that every interior node
//! of the decomposition tree has exactly two children; the paper notes that splitting
//! high-degree nodes and adding empty leaves achieves this without changing the width.
//! [`BinaryTreeDecomposition::from_decomposition`] performs exactly that normalisation.

use crate::decomposition::TreeDecomposition;
use psi_graph::Vertex;

/// A rooted tree decomposition in which every node has zero or exactly two children.
#[derive(Clone, Debug)]
pub struct BinaryTreeDecomposition {
    /// Sorted bag of every node.
    pub bags: Vec<Vec<Vertex>>,
    /// `children[i]` is `Some([left, right])` for interior nodes, `None` for leaves.
    pub children: Vec<Option<[usize; 2]>>,
    /// Parent of every node (`usize::MAX` for the root).
    pub parent: Vec<usize>,
    /// The root node index.
    pub root: usize,
    /// Number of vertices of the decomposed graph.
    pub num_graph_vertices: usize,
}

impl BinaryTreeDecomposition {
    /// Number of nodes of the binarised tree.
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Width (`max |bag| − 1`).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Whether `node` is a leaf.
    pub fn is_leaf(&self, node: usize) -> bool {
        self.children[node].is_none()
    }

    /// Nodes in post-order (children before parents); the root is last.
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
            } else {
                stack.push((node, true));
                if let Some([l, r]) = self.children[node] {
                    stack.push((r, false));
                    stack.push((l, false));
                }
            }
        }
        order
    }

    /// Builds a rooted binary decomposition from an arbitrary tree decomposition.
    ///
    /// Nodes with one child get an extra empty leaf; nodes with `c > 2` children are
    /// split into a chain of `c − 1` copies of the same bag. The width is unchanged.
    pub fn from_decomposition(td: &TreeDecomposition) -> Self {
        assert!(td.num_bags() > 0, "cannot binarise an empty decomposition");
        let adj = td.tree_adjacency();
        let n = td.num_bags();

        // Root the original tree at node 0 and collect children lists.
        let root = 0usize;
        let mut orig_children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut visited = vec![false; n];
        let mut stack = vec![root];
        visited[root] = true;
        let mut order = Vec::new();
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    orig_children[u].push(v);
                    stack.push(v);
                }
            }
        }
        assert!(
            visited.iter().all(|&v| v),
            "decomposition tree is disconnected; validate() it first"
        );

        let mut bags: Vec<Vec<Vertex>> = Vec::with_capacity(2 * n);
        let mut children: Vec<Option<[usize; 2]>> = Vec::with_capacity(2 * n);
        let mut parent: Vec<usize> = Vec::with_capacity(2 * n);

        // new_of[orig] = index of the top copy of the original node in the new tree
        let mut new_of = vec![usize::MAX; n];

        fn push_node(
            bags: &mut Vec<Vec<Vertex>>,
            children: &mut Vec<Option<[usize; 2]>>,
            parent: &mut Vec<usize>,
            bag: Vec<Vertex>,
        ) -> usize {
            bags.push(bag);
            children.push(None);
            parent.push(usize::MAX);
            bags.len() - 1
        }

        // Create nodes top-down so parents exist before children are attached.
        for &u in &order {
            let top = push_node(&mut bags, &mut children, &mut parent, td.bags[u].clone());
            new_of[u] = top;
        }
        // Attach children, splitting as needed.
        for &u in &order {
            let kids: Vec<usize> = orig_children[u].iter().map(|&c| new_of[c]).collect();
            let mut attach_point = new_of[u];
            match kids.len() {
                0 => {}
                1 => {
                    let empty = push_node(&mut bags, &mut children, &mut parent, Vec::new());
                    children[attach_point] = Some([kids[0], empty]);
                    parent[kids[0]] = attach_point;
                    parent[empty] = attach_point;
                }
                _ => {
                    // chain: each copy of u's bag takes one real child on the left and
                    // either the next copy or the last real child on the right.
                    for (i, &kid) in kids.iter().enumerate() {
                        if i + 1 == kids.len() {
                            // last child becomes the right child of the current attach point;
                            // but the attach point already has a left child from the previous
                            // iteration, except when there is exactly one remaining.
                            unreachable!("handled below");
                        }
                        let right: usize = if i + 2 == kids.len() {
                            kids[i + 1]
                        } else {
                            push_node(&mut bags, &mut children, &mut parent, td.bags[u].clone())
                        };
                        children[attach_point] = Some([kid, right]);
                        parent[kid] = attach_point;
                        parent[right] = attach_point;
                        if i + 2 == kids.len() {
                            break;
                        }
                        attach_point = right;
                    }
                }
            }
        }

        BinaryTreeDecomposition {
            bags,
            children,
            parent,
            root: new_of[root],
            num_graph_vertices: td.num_graph_vertices,
        }
    }

    /// Converts back to a plain [`TreeDecomposition`] (used by validation in tests).
    pub fn to_decomposition(&self) -> TreeDecomposition {
        let mut edges = Vec::new();
        for (i, &p) in self.parent.iter().enumerate() {
            if p != usize::MAX {
                edges.push((p, i));
            }
        }
        TreeDecomposition::new(self.bags.clone(), edges, self.num_graph_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::min_degree_decomposition;
    use psi_graph::generators;

    fn check_binary(b: &BinaryTreeDecomposition) {
        for node in 0..b.num_nodes() {
            match b.children[node] {
                None => {}
                Some([l, r]) => {
                    assert_ne!(l, r);
                    assert_eq!(b.parent[l], node);
                    assert_eq!(b.parent[r], node);
                }
            }
        }
        assert_eq!(b.parent[b.root], usize::MAX);
        // postorder visits every node exactly once, root last
        let po = b.postorder();
        assert_eq!(po.len(), b.num_nodes());
        assert_eq!(*po.last().unwrap(), b.root);
        let unique: std::collections::HashSet<_> = po.iter().collect();
        assert_eq!(unique.len(), po.len());
    }

    #[test]
    fn binarise_grid_decomposition() {
        let g = generators::grid(5, 5);
        let td = min_degree_decomposition(&g);
        let b = BinaryTreeDecomposition::from_decomposition(&td);
        check_binary(&b);
        assert_eq!(b.width(), td.width());
        b.to_decomposition().validate(&g).unwrap();
    }

    #[test]
    fn binarise_star_shaped_decomposition() {
        // A decomposition tree that is a star: one centre bag adjacent to 5 leaf bags.
        let g = generators::star(6);
        let bags = vec![
            vec![0],
            vec![0, 1],
            vec![0, 2],
            vec![0, 3],
            vec![0, 4],
            vec![0, 5],
        ];
        let edges = vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)];
        let td = TreeDecomposition::new(bags, edges, 6);
        td.validate(&g).unwrap();
        let b = BinaryTreeDecomposition::from_decomposition(&td);
        check_binary(&b);
        assert_eq!(b.width(), 1);
        b.to_decomposition().validate(&g).unwrap();
        // every interior node has exactly two children by construction
        for node in 0..b.num_nodes() {
            if let Some([_, _]) = b.children[node] {
                assert!(b.children[node].unwrap().len() == 2);
            }
        }
    }

    #[test]
    fn binarise_path_decomposition_adds_empty_leaves() {
        let g = generators::path(5);
        let bags = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]];
        let td = TreeDecomposition::new(bags, vec![(0, 1), (1, 2), (2, 3)], 5);
        let b = BinaryTreeDecomposition::from_decomposition(&td);
        check_binary(&b);
        // chain of 4 bags: 3 nodes have one original child each -> 3 empty leaves added
        let empties = b.bags.iter().filter(|bag| bag.is_empty()).count();
        assert_eq!(empties, 3);
        b.to_decomposition().validate(&g).unwrap();
    }

    #[test]
    fn single_bag_decomposition() {
        let g = generators::complete(4);
        let td = TreeDecomposition::trivial(&g);
        let b = BinaryTreeDecomposition::from_decomposition(&td);
        check_binary(&b);
        assert_eq!(b.num_nodes(), 1);
        assert!(b.is_leaf(b.root));
    }

    #[test]
    fn width_preserved_on_random_planar() {
        let g = generators::random_stacked_triangulation(80, 2);
        let td = min_degree_decomposition(&g);
        let b = BinaryTreeDecomposition::from_decomposition(&td);
        check_binary(&b);
        assert_eq!(b.width(), td.width());
        b.to_decomposition().validate(&g).unwrap();
    }
}
