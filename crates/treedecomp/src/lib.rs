//! Tree decompositions and the tree-into-paths machinery of the paper.
//!
//! This crate supplies the "bounded treewidth" substrate of the reproduction:
//!
//! * [`TreeDecomposition`] — bags + decomposition tree, with a full validity checker
//!   (the three conditions of Section 1.1) and width computation,
//! * [`elimination`] — min-degree / min-fill elimination-ordering heuristics that build
//!   valid decompositions of arbitrary graphs (the documented substitution for the
//!   Baker/Eppstein width-`3d` construction and Lagergren's parallel algorithm; only
//!   the width, never the correctness, depends on the heuristic),
//! * [`binary`] — rooted binarisation so that every interior node has exactly two
//!   children (the form assumed by the partial-match dynamic program),
//! * [`layered`] — the Baker/Eppstein guaranteed-width construction for embedded
//!   planar graphs (width ≤ `3d + 2` from a depth-`d` BFS tree), used when it beats
//!   the elimination heuristics,
//! * [`path_layers`] — Lemma 3.2 / Appendix A: decomposing a rooted tree into paths
//!   grouped into `O(log n)` layers, including the `f≠ / g=` unary-function family and
//!   its closure properties used by the expression-tree-evaluation argument.

pub mod binary;
pub mod decomposition;
pub mod elimination;
pub mod layered;
pub mod path_layers;

pub use binary::BinaryTreeDecomposition;
pub use decomposition::TreeDecomposition;
pub use elimination::{
    min_degree_decomposition, min_fill_decomposition, treewidth_upper_bound, EliminationStrategy,
};
pub use layered::{layered_decomposition, layered_decomposition_auto};
pub use path_layers::{
    layer_numbers, layer_numbers_parallel, tree_into_paths, LayerFn, PathDecomposition,
};
