//! Decomposing a rooted tree into paths grouped into `O(log n)` layers (Lemma 3.2).
//!
//! The layer number of a node is computed by the recursive function `L` of Appendix A:
//! a leaf has layer 0, and an interior node takes the maximum layer of its children,
//! plus one if that maximum is attained by two or more children. Nodes of equal layer
//! connected by tree edges form vertex-disjoint paths, and nodes of layer `i` have no
//! children of layer `> i`; because a layer increase requires two children of equal
//! maximal layer, there are at most `⌊log2 n⌋ + 1` layers.
//!
//! The module also implements the unary-function family `{f≠_i, g=_i}` of Appendix A and
//! verifies (in tests) that it is closed under composition and under projection of `L`,
//! which is the precondition for evaluating the layer numbers with parallel tree
//! contraction in `O(n)` work and `O(log n)` depth. The parallel evaluation provided
//! here ([`layer_numbers_parallel`]) processes the tree level-synchronously by node
//! height with rayon, which matches the sequential result exactly.

use rayon::prelude::*;

/// A rooted tree given by its children lists (any arity).
#[derive(Clone, Debug)]
pub struct RootedTree {
    /// `children[v]` lists the children of node `v`.
    pub children: Vec<Vec<usize>>,
    /// Parent of each node (`usize::MAX` for the root).
    pub parent: Vec<usize>,
    /// Root node index.
    pub root: usize,
}

impl RootedTree {
    /// Builds a rooted tree from a parent array (`usize::MAX` marks the root).
    pub fn from_parents(parent: Vec<usize>) -> Self {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut root = usize::MAX;
        for (v, &p) in parent.iter().enumerate() {
            if p == usize::MAX {
                assert_eq!(root, usize::MAX, "multiple roots");
                root = v;
            } else {
                children[p].push(v);
            }
        }
        assert_ne!(root, usize::MAX, "no root found");
        RootedTree {
            children,
            parent,
            root,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Nodes in post-order (children before parents).
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
            } else {
                stack.push((node, true));
                for &c in &self.children[node] {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// The layer-number combination function `L` of Appendix A.
pub fn combine_layers(child_layers: &[u32]) -> u32 {
    match child_layers.iter().copied().max() {
        None => 0,
        Some(max) => {
            let count = child_layers.iter().filter(|&&l| l == max).count();
            if count == 1 {
                max
            } else {
                max + 1
            }
        }
    }
}

/// Sequential layer numbers via a post-order traversal.
pub fn layer_numbers(tree: &RootedTree) -> Vec<u32> {
    let mut layer = vec![0u32; tree.len()];
    for v in tree.postorder() {
        let child_layers: Vec<u32> = tree.children[v].iter().map(|&c| layer[c]).collect();
        layer[v] = combine_layers(&child_layers);
    }
    layer
}

/// Parallel layer numbers: nodes are grouped by height and each height class is
/// evaluated with a parallel sweep. Produces exactly the same numbers as
/// [`layer_numbers`].
pub fn layer_numbers_parallel(tree: &RootedTree) -> Vec<u32> {
    let n = tree.len();
    // compute heights bottom-up (height = longest distance to a descendant leaf)
    let mut height = vec![0u32; n];
    for v in tree.postorder() {
        height[v] = tree.children[v]
            .iter()
            .map(|&c| height[c] + 1)
            .max()
            .unwrap_or(0);
    }
    let max_h = height.iter().copied().max().unwrap_or(0);
    let mut by_height: Vec<Vec<usize>> = vec![Vec::new(); max_h as usize + 1];
    for v in 0..n {
        by_height[height[v] as usize].push(v);
    }
    let mut layer = vec![0u32; n];
    for bucket in &by_height {
        let computed: Vec<(usize, u32)> = bucket
            .par_iter()
            .map(|&v| {
                let child_layers: Vec<u32> = tree.children[v].iter().map(|&c| layer[c]).collect();
                (v, combine_layers(&child_layers))
            })
            .collect();
        for (v, l) in computed {
            layer[v] = l;
        }
    }
    layer
}

/// The decomposition of a rooted tree into layered paths.
#[derive(Clone, Debug)]
pub struct PathDecomposition {
    /// Layer number of every node.
    pub layer: Vec<u32>,
    /// The paths; each path lists its nodes bottom-up (deepest node first, the node
    /// closest to the root last). Every tree node appears in exactly one path.
    pub paths: Vec<Vec<usize>>,
    /// For every node, the index of its path in `paths`.
    pub path_of: Vec<usize>,
    /// Paths grouped by layer: `layers[i]` lists the indices of the paths whose nodes
    /// have layer number `i`.
    pub layers: Vec<Vec<usize>>,
}

impl PathDecomposition {
    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Decomposes a rooted tree into paths grouped into `O(log n)` layers (Lemma 3.2).
pub fn tree_into_paths(tree: &RootedTree) -> PathDecomposition {
    let n = tree.len();
    let layer = layer_numbers(tree);
    // Within a layer, each node has at most one child of the same layer. Walk from the
    // bottom of every same-layer chain upwards.
    // A node is the *bottom* of its path if none of its children share its layer.
    let mut path_of = vec![usize::MAX; n];
    let mut paths: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        let is_bottom = !tree.children[v].iter().any(|&c| layer[c] == layer[v]);
        if !is_bottom {
            continue;
        }
        let mut path = vec![v];
        let mut cur = v;
        loop {
            let p = tree.parent[cur];
            if p == usize::MAX || layer[p] != layer[cur] {
                break;
            }
            path.push(p);
            cur = p;
        }
        let idx = paths.len();
        for &node in &path {
            path_of[node] = idx;
        }
        paths.push(path);
    }
    debug_assert!(path_of.iter().all(|&p| p != usize::MAX));
    let max_layer = layer.iter().copied().max().unwrap_or(0) as usize;
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); max_layer + 1];
    for (idx, path) in paths.iter().enumerate() {
        layers[layer[path[0]] as usize].push(idx);
    }
    PathDecomposition {
        layer,
        paths,
        path_of,
        layers,
    }
}

/// The unary function family of Appendix A over layer numbers.
///
/// `FNeq(i)` ("f≠_i") records a state where the running maximum is `i` and unique;
/// `GEq(i)` ("g=_i") records a state where the running maximum is `i` and attained at
/// least twice. The family is closed under composition and under projection of the
/// layer-combination function `L`, which is what parallel expression-tree evaluation
/// (tree contraction) requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerFn {
    /// Maximum so far is `i` and unique.
    FNeq(u32),
    /// Maximum so far is `i` and not unique.
    GEq(u32),
}

impl LayerFn {
    /// Applies the function to the layer number `x` of the remaining child.
    pub fn apply(self, x: u32) -> u32 {
        match self {
            LayerFn::FNeq(i) => {
                if i == x {
                    i + 1
                } else {
                    i.max(x)
                }
            }
            LayerFn::GEq(i) => {
                if i >= x {
                    i + 1
                } else {
                    x
                }
            }
        }
    }

    /// Composition `self ∘ other` (first apply `other`, then `self`) **as stated in
    /// Appendix A of the paper**.
    ///
    /// Reproduction note (recorded in `DESIGN.md`): the paper's composition table is
    /// not correct for the boundary case where the outer index exceeds the inner index
    /// by exactly one — e.g. `f≠1 ∘ f≠0` evaluated at `x = 0` is `2`, but the table
    /// claims the composition equals `f≠max(1,0) = f≠1`, which gives `1`. The family
    /// `{f≠_i, g=_i}` is therefore *not* closed under composition. The test
    /// `paper_composition_table_counterexample` pins this down, and [`ChainFn`] provides
    /// a corrected (and genuinely closed) family that the tree-contraction argument can
    /// use instead.
    pub fn compose_paper(self, other: LayerFn) -> LayerFn {
        use LayerFn::*;
        match (self, other) {
            (GEq(j), FNeq(i)) | (FNeq(i), GEq(j)) => {
                if i == j {
                    GEq(i)
                } else if i > j {
                    FNeq(i)
                } else {
                    GEq(j)
                }
            }
            (FNeq(i), FNeq(j)) => {
                if i == j {
                    GEq(i)
                } else {
                    FNeq(i.max(j))
                }
            }
            (GEq(i), GEq(j)) => GEq(i.max(j)),
        }
    }

    /// Converts to the corrected closed representation.
    pub fn to_chain_fn(self, domain_bound: u32) -> ChainFn {
        ChainFn::from_fn(domain_bound, |x| self.apply(x))
    }

    /// The projection of `L` onto one argument given the other children's layers
    /// (Appendix A): `L(l_1, …, x, …, l_{k−1})` as a unary function of `x`.
    pub fn project(other_children: &[u32]) -> LayerFn {
        match other_children.iter().copied().max() {
            None => panic!("projection requires at least one fixed child layer"),
            Some(max) => {
                let unique = other_children.iter().filter(|&&l| l == max).count() == 1;
                if unique {
                    LayerFn::FNeq(max)
                } else {
                    LayerFn::GEq(max)
                }
            }
        }
    }
}

/// A corrected, genuinely composition-closed family of unary functions over layer
/// numbers, used as the state of partially contracted subtrees.
///
/// Every projection of the layer-combination function `L` is non-decreasing, increases
/// by at most one per unit of its argument, and equals the identity for all arguments
/// above a small threshold (at most the current layer maximum plus one). Such functions
/// are represented exactly by their values below the threshold; composition is ordinary
/// function composition and keeps the threshold bounded by the larger of the two, so the
/// representation stays `O(log n)` words — exactly what the expression-tree-evaluation
/// (tree contraction) argument of Appendix A needs. This replaces the paper's
/// `{f≠, g=}` family, which is not closed under composition (see
/// [`LayerFn::compose_paper`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainFn {
    /// `h(x) = values[x]` for `x < values.len()`, and `h(x) = x` otherwise.
    values: Vec<u32>,
}

impl ChainFn {
    /// The identity function.
    pub fn identity() -> Self {
        ChainFn { values: Vec::new() }
    }

    /// Captures an arbitrary function that is the identity above `domain_bound`.
    pub fn from_fn<F: Fn(u32) -> u32>(domain_bound: u32, f: F) -> Self {
        let mut values: Vec<u32> = (0..=domain_bound).map(&f).collect();
        while values.last().copied() == Some(values.len() as u32 - 1) {
            values.pop();
        }
        ChainFn { values }
    }

    /// The projection of `L` for fixed sibling layers (replacement for [`LayerFn::project`]).
    pub fn project(other_children: &[u32]) -> Self {
        let max = other_children
            .iter()
            .copied()
            .max()
            .expect("at least one sibling");
        ChainFn::from_fn(max + 1, |x| {
            let mut all: Vec<u32> = other_children.to_vec();
            all.push(x);
            combine_layers(&all)
        })
    }

    /// Applies the function.
    pub fn apply(&self, x: u32) -> u32 {
        self.values.get(x as usize).copied().unwrap_or(x)
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &ChainFn) -> ChainFn {
        let bound = (other.values.len().max(self.values.len())) as u32;
        ChainFn::from_fn(bound, |x| self.apply(other.apply(x)))
    }

    /// Size of the stored table (for the `O(log n)` representation-size argument).
    pub fn table_len(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> RootedTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut parent = vec![usize::MAX; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = rng.gen_range(0..v);
        }
        RootedTree::from_parents(parent)
    }

    fn path_tree(n: usize) -> RootedTree {
        let mut parent = vec![usize::MAX; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = v - 1;
        }
        RootedTree::from_parents(parent)
    }

    fn balanced_tree(levels: u32) -> RootedTree {
        let n = (1usize << levels) - 1;
        let mut parent = vec![usize::MAX; n];
        for (v, p) in parent.iter_mut().enumerate().skip(1) {
            *p = (v - 1) / 2;
        }
        RootedTree::from_parents(parent)
    }

    fn check_lemma_3_2(tree: &RootedTree, pd: &PathDecomposition) {
        let n = tree.len();
        // every node in exactly one path
        let mut count = vec![0usize; n];
        for path in &pd.paths {
            for &v in path {
                count[v] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
        // each path is a chain: consecutive entries are (child, parent) pairs of equal layer
        for path in &pd.paths {
            for w in path.windows(2) {
                assert_eq!(tree.parent[w[0]], w[1]);
                assert_eq!(pd.layer[w[0]], pd.layer[w[1]]);
            }
        }
        // layer property: children never have a larger layer than their parent
        for v in 0..n {
            for &c in &tree.children[v] {
                assert!(pd.layer[c] <= pd.layer[v]);
            }
        }
        // number of layers is O(log n)
        let max_layers = (n as f64).log2().floor() as usize + 1;
        assert!(
            pd.num_layers() <= max_layers,
            "{} layers for n={}",
            pd.num_layers(),
            n
        );
    }

    #[test]
    fn path_tree_is_one_path() {
        let t = path_tree(20);
        let pd = tree_into_paths(&t);
        check_lemma_3_2(&t, &pd);
        assert_eq!(pd.paths.len(), 1);
        assert_eq!(pd.num_layers(), 1);
        assert_eq!(pd.paths[0].len(), 20);
        // ordered bottom-up: deepest node (19) first, root (0) last
        assert_eq!(pd.paths[0][0], 19);
        assert_eq!(*pd.paths[0].last().unwrap(), 0);
    }

    #[test]
    fn balanced_tree_has_log_layers() {
        let t = balanced_tree(6); // 63 nodes
        let pd = tree_into_paths(&t);
        check_lemma_3_2(&t, &pd);
        assert_eq!(pd.num_layers(), 6);
        // the root of a perfectly balanced binary tree is alone in the top layer path
        let root_path = &pd.paths[pd.path_of[t.root]];
        assert_eq!(root_path.len(), 1);
    }

    #[test]
    fn random_trees_satisfy_lemma() {
        for seed in 0..10u64 {
            let t = random_tree(200, seed);
            let pd = tree_into_paths(&t);
            check_lemma_3_2(&t, &pd);
        }
    }

    #[test]
    fn parallel_layers_match_sequential() {
        for seed in 0..5u64 {
            let t = random_tree(500, seed);
            assert_eq!(layer_numbers(&t), layer_numbers_parallel(&t));
        }
        let t = balanced_tree(8);
        assert_eq!(layer_numbers(&t), layer_numbers_parallel(&t));
    }

    #[test]
    fn single_node_tree() {
        let t = RootedTree::from_parents(vec![usize::MAX]);
        let pd = tree_into_paths(&t);
        assert_eq!(pd.paths.len(), 1);
        assert_eq!(pd.layer, vec![0]);
    }

    #[test]
    fn layer_fn_matches_direct_combination() {
        // L(l1.., x) computed through the projection function equals combine_layers.
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let others: Vec<u32> = (0..rng.gen_range(1..5))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let x: u32 = rng.gen_range(0..6);
            let f = LayerFn::project(&others);
            let mut all = others.clone();
            all.push(x);
            assert_eq!(f.apply(x), combine_layers(&all), "others={others:?} x={x}");
        }
    }

    #[test]
    fn paper_composition_table_counterexample() {
        // Reproduction erratum: Appendix A claims f≠i(f≠j(x)) = f≠max(i,j)(x) for i ≠ j,
        // but for i = 1, j = 0, x = 0 the true composition gives 2 while the table gives 1.
        let outer = LayerFn::FNeq(1);
        let inner = LayerFn::FNeq(0);
        let true_value = outer.apply(inner.apply(0));
        let table_value = outer.compose_paper(inner).apply(0);
        assert_eq!(true_value, 2);
        assert_eq!(table_value, 1);
        assert_ne!(true_value, table_value);
    }

    #[test]
    fn paper_composition_table_holds_when_indices_are_far_apart() {
        // The table *is* correct whenever the indices are equal or differ by at least 2.
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i.abs_diff(j) == 1 {
                    continue;
                }
                for (f, g) in [
                    (LayerFn::FNeq(i), LayerFn::FNeq(j)),
                    (LayerFn::GEq(i), LayerFn::GEq(j)),
                    (LayerFn::FNeq(i), LayerFn::GEq(j)),
                    (LayerFn::GEq(i), LayerFn::FNeq(j)),
                ] {
                    let comp = f.compose_paper(g);
                    for x in 0..10u32 {
                        assert_eq!(comp.apply(x), f.apply(g.apply(x)), "f={f:?} g={g:?} x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn chain_fn_family_is_closed_under_composition() {
        // The corrected family: compositions of arbitrary projections of L, evaluated
        // both directly and through ChainFn::compose, always agree.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..300 {
            let sib1: Vec<u32> = (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let sib2: Vec<u32> = (0..rng.gen_range(1..4))
                .map(|_| rng.gen_range(0..5))
                .collect();
            let f = ChainFn::project(&sib1);
            let g = ChainFn::project(&sib2);
            let comp = f.compose(&g);
            for x in 0..12u32 {
                assert_eq!(
                    comp.apply(x),
                    f.apply(g.apply(x)),
                    "sib1={sib1:?} sib2={sib2:?} x={x}"
                );
            }
            // representation stays small (identity above max sibling layer + 1)
            assert!(comp.table_len() <= 8);
        }
    }

    #[test]
    fn chain_fn_projection_matches_direct_combination() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let others: Vec<u32> = (0..rng.gen_range(1..5))
                .map(|_| rng.gen_range(0..6))
                .collect();
            let x: u32 = rng.gen_range(0..8);
            let f = ChainFn::project(&others);
            let mut all = others.clone();
            all.push(x);
            assert_eq!(f.apply(x), combine_layers(&all));
        }
    }

    #[test]
    fn chain_fn_identity_and_long_chain_evaluation() {
        // Evaluate a long path of unary projections by composing ChainFns in a balanced
        // (associative) order — the essence of the contraction-based evaluation.
        let mut rng = SmallRng::seed_from_u64(21);
        let sibs: Vec<Vec<u32>> = (0..64)
            .map(|_| {
                (0..rng.gen_range(1..3))
                    .map(|_| rng.gen_range(0..4))
                    .collect()
            })
            .collect();
        let fns: Vec<ChainFn> = sibs.iter().map(|s| ChainFn::project(s)).collect();
        // direct sequential evaluation starting from x = 0
        let mut direct = 0u32;
        for f in &fns {
            direct = f.apply(direct);
        }
        // balanced composition
        fn reduce(fns: &[ChainFn]) -> ChainFn {
            match fns.len() {
                0 => ChainFn::identity(),
                1 => fns[0].clone(),
                _ => {
                    let mid = fns.len() / 2;
                    // later functions are applied after earlier ones: compose(right, left)
                    reduce(&fns[mid..]).compose(&reduce(&fns[..mid]))
                }
            }
        }
        let composed = reduce(&fns);
        assert_eq!(composed.apply(0), direct);
    }

    #[test]
    fn caterpillar_tree_layers() {
        // spine of 10 nodes, each spine node with 2 extra leaf children
        let mut parent = vec![usize::MAX];
        for i in 1..10 {
            parent.push(i - 1); // spine
        }
        for s in 0..10usize {
            parent.push(s);
            parent.push(s);
        }
        let t = RootedTree::from_parents(parent);
        let pd = tree_into_paths(&t);
        check_lemma_3_2(&t, &pd);
        // leaves are layer 0, spine nodes are layer 1 (two layer-0 children each)
        assert_eq!(pd.num_layers(), 2);
    }
}
