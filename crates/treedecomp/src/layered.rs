//! Guaranteed-width tree decompositions of embedded planar graphs.
//!
//! The paper's width bound rests on Baker's layering / Eppstein's lemma: a planar
//! graph with a rooted spanning tree of depth `d` has a tree decomposition of width
//! at most `3d + 2`. This module implements that construction directly from a facial
//! embedding:
//!
//! 1. every face is fan-triangulated from its first corner (the chords are *virtual* —
//!    they only ever enlarge bags, never enter validity condition 3, so the result is
//!    a decomposition of the original graph),
//! 2. a BFS tree `T` is grown from a root chosen near the graph's center (two BFS
//!    sweeps), over the triangulated adjacency so chords can shorten the depth,
//! 3. each triangle becomes a bag: the union of the `T`-root paths of its three
//!    corners (at most `3(d + 1)` vertices),
//! 4. the decomposition tree is the *cotree*: the spanning tree of the triangulation's
//!    dual induced by the primal non-tree edges (the interdigitating-trees fact).
//!
//! The construction is exact about edge *sides*: fan chords pair up inside their own
//! fan, while original walk edges pair across the two faces the embedding says they
//! border, so duplicated chords (a fan chord that also exists as a graph edge
//! elsewhere) never confuse the dual. Inputs the construction does not support —
//! non-simple face walks, faces shorter than triangles, disconnected graphs — and any
//! internal inconsistency simply yield `None`; every returned decomposition has been
//! re-checked by [`TreeDecomposition::validate`], so callers can fall back to an
//! elimination heuristic with no soundness concern.

use crate::decomposition::TreeDecomposition;
use psi_graph::{CsrGraph, UnionFind, Vertex};
use std::collections::HashMap;

/// Builds the width-`≤ 3d + 2` decomposition from a BFS tree rooted at `root`
/// (`d` = the tree's depth). Returns `None` if the embedding is outside the
/// construction's reach (see the module docs) or the result fails validation.
pub fn layered_decomposition(
    graph: &CsrGraph,
    faces: &[Vec<Vertex>],
    root: Vertex,
) -> Option<TreeDecomposition> {
    let n = graph.num_vertices();
    if n == 0 || (root as usize) >= n || faces.is_empty() {
        return None;
    }
    // The construction needs honest triangles: every walk simple and at least a
    // triangle long (digons and singleton faces belong to graphs far too small for
    // the guarantee to matter).
    let mut mark = vec![u32::MAX; n];
    for (fi, walk) in faces.iter().enumerate() {
        if walk.len() < 3 {
            return None;
        }
        for &v in walk {
            if (v as usize) >= n || mark[v as usize] == fi as u32 {
                return None;
            }
            mark[v as usize] = fi as u32;
        }
    }

    // Fan-triangulate every face, recording for each triangle its corners and the
    // dual edges its sides induce. Chord sides pair within the fan; original walk
    // sides are collected per undirected edge and paired globally (a validated
    // embedding has exactly two sides per edge).
    let mut triangles: Vec<[Vertex; 3]> = Vec::new();
    let mut dual_edges: Vec<(usize, usize, Vertex, Vertex)> = Vec::new();
    let mut walk_sides: Vec<(Vertex, Vertex, usize)> = Vec::new();
    let mut chords: Vec<(Vertex, Vertex)> = Vec::new();
    for walk in faces {
        let m = walk.len();
        let base = triangles.len();
        for i in 1..m - 1 {
            triangles.push([walk[0], walk[i], walk[i + 1]]);
        }
        let mut walk_side = |u: Vertex, v: Vertex, t: usize| {
            walk_sides.push((u.min(v), u.max(v), t));
        };
        walk_side(walk[0], walk[1], base);
        for i in 1..m - 1 {
            walk_side(walk[i], walk[i + 1], base + i - 1);
        }
        walk_side(walk[m - 1], walk[0], base + m - 3);
        for i in 2..m - 1 {
            // chord (walk[0], walk[i]) splits local triangles i-2 and i-1
            dual_edges.push((base + i - 2, base + i - 1, walk[0], walk[i]));
            chords.push((walk[0], walk[i]));
        }
    }
    // Sorting keeps the side pairing — and with it the whole decomposition —
    // deterministic (the index artifact's freeze path depends on it).
    walk_sides.sort_unstable();
    for pair in walk_sides.chunks(2) {
        match *pair {
            [(u1, v1, t1), (u2, v2, t2)] if u1 == u2 && v1 == v2 => {
                dual_edges.push((t1, t2, u1, v1));
            }
            _ => return None, // not a closed embedding of this graph
        }
    }

    // BFS tree over the triangulated adjacency (chords may shorten the depth).
    let mut adj = graph.to_adjacency();
    for &(u, v) in &chords {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    let mut parent = vec![u32::MAX; n];
    let mut depth = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if depth[v as usize] == u32::MAX {
                depth[v as usize] = depth[u as usize] + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    if depth.contains(&u32::MAX) {
        return None; // disconnected
    }

    // Cotree: dual edges whose primal edge is not (a designated copy of) a BFS-tree
    // edge span the dual by the interdigitating-trees fact. Parallel embedded copies
    // of a tree pair contribute all but one copy to the cotree.
    let mut tree_pair_budget: HashMap<(Vertex, Vertex), u32> = HashMap::new();
    for v in 0..n as Vertex {
        let p = parent[v as usize];
        if p != u32::MAX {
            *tree_pair_budget.entry((v.min(p), v.max(p))).or_insert(0) += 1;
        }
    }
    let mut uf = UnionFind::new(triangles.len());
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    for &(a, b, u, v) in &dual_edges {
        if let Some(budget) = tree_pair_budget.get_mut(&(u.min(v), u.max(v))) {
            if *budget > 0 {
                *budget -= 1;
                continue;
            }
        }
        if uf.union(a, b) {
            tree_edges.push((a, b));
        }
    }
    if tree_edges.len() + 1 != triangles.len() {
        return None; // the cotree did not span the dual
    }

    // Bags: the union of the three corners' root paths.
    let bags: Vec<Vec<Vertex>> = triangles
        .iter()
        .map(|corners| {
            let mut bag = Vec::new();
            for &c in corners {
                let mut v = c;
                while v != u32::MAX {
                    bag.push(v);
                    v = parent[v as usize];
                }
            }
            bag
        })
        .collect();
    let td = TreeDecomposition::new(bags, tree_edges, n);
    td.validate(graph).ok().map(|_| td)
}

/// As [`layered_decomposition`], choosing the BFS root from a small width-aware
/// portfolio instead of a single heuristic guess.
///
/// Candidates, in deterministic order:
///
/// 1. the *two-sweep centre* (BFS from vertex 0 to a far vertex `u`, BFS from
///    `u` to `w`, root at the midpoint of the `u→w` path) — depth ≈ half the
///    diameter, the classic choice;
/// 2. the *maximum-degree* vertex (smallest id on ties) — hubs sit centrally in
///    stacked/fan-like triangulations where the sweep midpoint can land on a
///    deep spoke;
/// 3. the *peripheral* endpoint `w` itself — a sanity anchor: on path-like
///    graphs where every root is equally deep it costs nothing, and on
///    irregular embeddings it occasionally beats both "central" guesses.
///
/// Each candidate runs the full validated construction; the narrowest
/// validated decomposition wins, with ties resolved in candidate order — a
/// pure function of `(graph, faces)`, so freeze determinism is preserved and
/// the result is never wider than the old single-root construction.
pub fn layered_decomposition_auto(
    graph: &CsrGraph,
    faces: &[Vec<Vertex>],
) -> Option<TreeDecomposition> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    let far = |start: Vertex| -> (Vertex, Vec<u32>) {
        let mut parent = vec![u32::MAX; n];
        let mut depth = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        depth[start as usize] = 0;
        queue.push_back(start);
        let mut last = start;
        while let Some(u) = queue.pop_front() {
            last = u;
            for &v in graph.neighbors(u) {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
        (last, parent)
    };
    let (u, _) = far(0);
    let (w, parent) = far(u);
    // Midpoint of the u→w BFS path.
    let mut path = vec![w];
    let mut v = w;
    while parent[v as usize] != u32::MAX {
        v = parent[v as usize];
        path.push(v);
    }
    let centre = path[path.len() / 2];
    let mut max_degree = 0 as Vertex;
    for x in 1..n as Vertex {
        if graph.degree(x) > graph.degree(max_degree) {
            max_degree = x; // strict '>' keeps the smallest id on ties
        }
    }
    let mut seen: Vec<Vertex> = Vec::new();
    let mut best: Option<TreeDecomposition> = None;
    for root in [centre, max_degree, w] {
        if seen.contains(&root) {
            continue;
        }
        seen.push(root);
        if let Some(td) = layered_decomposition(graph, faces, root) {
            // Strictly-narrower wins, so the earliest candidate takes ties.
            if best.as_ref().is_none_or(|b| td.width() < b.width()) {
                best = Some(td);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_planar::generators as pg;

    fn check_width_bound(e: &psi_planar::Embedding, root: Vertex) {
        let td = layered_decomposition(&e.graph, &e.faces, root).expect("construction applies");
        // BFS depth over the *plain* graph upper-bounds the triangulated BFS depth.
        let mut depth = vec![usize::MAX; e.graph.num_vertices()];
        let mut q = std::collections::VecDeque::new();
        depth[root as usize] = 0;
        q.push_back(root);
        let mut d = 0;
        while let Some(u) = q.pop_front() {
            d = d.max(depth[u as usize]);
            for &v in e.graph.neighbors(u) {
                if depth[v as usize] == usize::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        assert!(
            td.width() <= 3 * d + 2,
            "width {} exceeds 3·{d}+2",
            td.width()
        );
    }

    #[test]
    fn triangulated_grids_meet_the_3d_bound() {
        for (r, c) in [(3usize, 3usize), (5, 4), (6, 6)] {
            let e = pg::triangulated_grid_embedded(r, c);
            check_width_bound(&e, 0);
        }
    }

    #[test]
    fn plain_grids_and_solids_validate() {
        for e in [
            pg::grid_embedded(5, 5),
            pg::octahedron(),
            pg::icosahedron(),
            pg::cube(),
        ] {
            let td = layered_decomposition_auto(&e.graph, &e.faces).expect("valid construction");
            td.validate(&e.graph).unwrap();
        }
    }

    #[test]
    fn long_grids_meet_the_bound_from_any_root() {
        // The width bound must hold both from a corner (deep BFS tree) and from the
        // auto-chosen central root (the two-sweep midpoint, whose depth is roughly
        // half the diameter).
        let e = pg::triangulated_grid_embedded(3, 20);
        let n = e.graph.num_vertices();
        check_width_bound(&e, 0);
        check_width_bound(&e, (n / 2) as Vertex);
        let auto = layered_decomposition_auto(&e.graph, &e.faces).unwrap();
        auto.validate(&e.graph).unwrap();
    }

    #[test]
    fn stacked_triangulations_validate() {
        let e = pg::stacked_triangulation_embedded(80, 3);
        let td = layered_decomposition_auto(&e.graph, &e.faces).expect("valid construction");
        td.validate(&e.graph).unwrap();
    }

    #[test]
    fn root_portfolio_is_deterministic_and_never_worse_than_the_centre_root() {
        for e in [
            pg::triangulated_grid_embedded(3, 20),
            pg::stacked_triangulation_embedded(60, 3),
            pg::grid_embedded(5, 5),
            pg::icosahedron(),
        ] {
            let auto = layered_decomposition_auto(&e.graph, &e.faces).expect("valid construction");
            auto.validate(&e.graph).unwrap();
            // The portfolio includes the two-sweep centre, so it can only improve
            // on rooting there — try every vertex and check the auto width is
            // within the portfolio's reach and at most the worst single root.
            let best_single = (0..e.graph.num_vertices() as Vertex)
                .filter_map(|r| layered_decomposition(&e.graph, &e.faces, r))
                .map(|td| td.width())
                .min()
                .expect("some root validates");
            assert!(
                auto.width() >= best_single,
                "portfolio cannot beat exhaustive"
            );
            // Determinism: re-running yields the identical decomposition.
            let again = layered_decomposition_auto(&e.graph, &e.faces).unwrap();
            assert_eq!(auto.width(), again.width());
            assert_eq!(auto.bags, again.bags);
        }
    }

    #[test]
    fn unsupported_inputs_are_declined() {
        // Disconnected: two triangles, separately embedded.
        let g = psi_graph::generators::disjoint_union(&[
            &psi_graph::generators::cycle(3),
            &psi_graph::generators::cycle(3),
        ]);
        let t0: Vec<Vertex> = vec![0, 1, 2];
        let t1: Vec<Vertex> = vec![3, 4, 5];
        assert!(layered_decomposition(&g, &[t0.clone(), t0, t1.clone(), t1], 0).is_none());
        // Digon face (K2).
        let k2 = psi_graph::generators::path(2);
        assert!(layered_decomposition(&k2, &[vec![0, 1]], 0).is_none());
    }
}
