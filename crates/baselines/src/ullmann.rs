//! Backtracking subgraph isomorphism (Ullmann-style), the exact general-graph baseline.

use planar_subiso::Pattern;
use psi_graph::{CsrGraph, Vertex};

struct Search<'a> {
    pattern: &'a Pattern,
    target: &'a CsrGraph,
    order: Vec<usize>,
    mapping: Vec<Option<Vertex>>,
    used: Vec<bool>,
    found: Vec<Vec<Vertex>>,
    limit: usize,
}

impl<'a> Search<'a> {
    fn new(pattern: &'a Pattern, target: &'a CsrGraph, limit: usize) -> Self {
        // order pattern vertices by decreasing degree, preferring vertices adjacent to
        // already-ordered ones (a simple connectivity-aware ordering)
        let k = pattern.k();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(pattern.neighbors(v).len()));
        Search {
            pattern,
            target,
            order,
            mapping: vec![None; k],
            used: vec![false; target.num_vertices()],
            found: Vec::new(),
            limit,
        }
    }

    fn run(&mut self) {
        self.recurse(0);
    }

    fn recurse(&mut self, depth: usize) {
        if self.found.len() >= self.limit {
            return;
        }
        if depth == self.order.len() {
            let occ: Vec<Vertex> = self.mapping.iter().map(|m| m.unwrap()).collect();
            self.found.push(occ);
            return;
        }
        let pv = self.order[depth];
        let pdeg = self.pattern.neighbors(pv).len();
        // candidate targets: degree at least deg(pv), unused, consistent with mapped neighbours
        for t in 0..self.target.num_vertices() as Vertex {
            if self.used[t as usize] || self.target.degree(t) < pdeg {
                continue;
            }
            let consistent =
                self.pattern
                    .neighbors(pv)
                    .iter()
                    .all(|&q| match self.mapping[q as usize] {
                        Some(tq) => self.target.has_edge(t, tq),
                        None => true,
                    });
            if !consistent {
                continue;
            }
            self.mapping[pv] = Some(t);
            self.used[t as usize] = true;
            self.recurse(depth + 1);
            self.used[t as usize] = false;
            self.mapping[pv] = None;
            if self.found.len() >= self.limit {
                return;
            }
        }
    }
}

/// Decides whether the pattern occurs in the target (exact).
pub fn ullmann_decide(pattern: &Pattern, target: &CsrGraph) -> bool {
    ullmann_find(pattern, target).is_some()
}

/// Finds one occurrence, if any (exact).
pub fn ullmann_find(pattern: &Pattern, target: &CsrGraph) -> Option<Vec<Vertex>> {
    if pattern.k() == 0 {
        return Some(Vec::new());
    }
    if pattern.k() > target.num_vertices() {
        return None;
    }
    let mut search = Search::new(pattern, target, 1);
    search.run();
    search.found.into_iter().next()
}

/// Counts all occurrences (as mappings). Exponential; use on small inputs only.
pub fn ullmann_count(pattern: &Pattern, target: &CsrGraph) -> usize {
    if pattern.k() == 0 {
        return 1;
    }
    if pattern.k() > target.num_vertices() {
        return 0;
    }
    let mut search = Search::new(pattern, target, usize::MAX);
    search.run();
    search.found.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use planar_subiso::verify_occurrence;
    use psi_graph::generators;

    #[test]
    fn agrees_with_hand_counts() {
        let g = generators::complete(4);
        assert_eq!(ullmann_count(&Pattern::triangle(), &g), 24);
        assert_eq!(ullmann_count(&Pattern::cycle(4), &g), 24);
        assert_eq!(ullmann_count(&Pattern::path(2), &g), 12);
        assert!(!ullmann_decide(&Pattern::clique(5), &g));
    }

    #[test]
    fn finds_verified_occurrences() {
        let g = generators::triangulated_grid(5, 5);
        for p in [
            Pattern::triangle(),
            Pattern::cycle(4),
            Pattern::path(6),
            Pattern::clique(4),
        ] {
            if let Some(occ) = ullmann_find(&p, &g) {
                assert!(verify_occurrence(&p, &g, &occ));
            }
        }
        assert!(ullmann_decide(&Pattern::triangle(), &g));
        assert!(!ullmann_decide(&Pattern::clique(5), &g));
    }

    #[test]
    fn agrees_with_core_pipeline() {
        let g = generators::random_stacked_triangulation(50, 8);
        for p in [
            Pattern::triangle(),
            Pattern::cycle(4),
            Pattern::cycle(5),
            Pattern::star(5),
            Pattern::clique(4),
        ] {
            assert_eq!(
                ullmann_decide(&p, &g),
                planar_subiso::decide(&p, &g),
                "k={}",
                p.k()
            );
        }
    }

    #[test]
    fn trivial_cases() {
        let g = generators::path(3);
        assert!(ullmann_decide(&Pattern::empty(), &g));
        assert_eq!(ullmann_count(&Pattern::single_vertex(), &g), 3);
        assert!(!ullmann_decide(&Pattern::path(4), &g));
    }
}
