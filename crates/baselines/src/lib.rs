//! Baseline algorithms the paper's contribution is compared against.
//!
//! * [`ullmann`] — classical backtracking subgraph isomorphism with degree and
//!   neighbourhood pruning (exact, exponential in general; the "naive `n^k`" reference
//!   point of Table 1 and the correctness oracle for the randomised pipeline),
//! * [`eppstein_seq`] — Eppstein's sequential approach: a *single* BFS of the whole
//!   graph replaces the clustering, and the resulting level windows are solved with the
//!   same bounded-treewidth DP (deterministic, `Θ(kn)` depth),
//! * [`maxflow`] — Even–Tarjan style vertex connectivity via unit-capacity max-flow on
//!   the split graph (Dinic), the exact reference for the vertex-connectivity
//!   experiments,
//! * [`brute_force`] — exhaustive small-cut enumeration for tiny graphs.

pub mod brute_force;
pub mod eppstein_seq;
pub mod maxflow;
pub mod ullmann;

pub use brute_force::brute_force_vertex_connectivity;
pub use eppstein_seq::eppstein_sequential_decide;
pub use maxflow::flow_vertex_connectivity;
pub use ullmann::{ullmann_count, ullmann_decide, ullmann_find};
