//! Exhaustive vertex-connectivity for tiny graphs (cross-check oracle).

use psi_graph::{CsrGraph, Vertex};

/// Exact vertex connectivity by enumerating all vertex subsets of size `< n − 1` in
/// increasing size and checking whether their removal disconnects the graph.
/// Exponential — intended for graphs with at most ~20 vertices.
pub fn brute_force_vertex_connectivity(graph: &CsrGraph) -> usize {
    let n = graph.num_vertices();
    if n <= 1 {
        return 0;
    }
    if !psi_graph::is_connected(graph) {
        return 0;
    }
    assert!(
        n <= 24,
        "brute force connectivity is limited to tiny graphs"
    );
    for size in 0..n - 1 {
        if some_cut_of_size(graph, size) {
            return size;
        }
    }
    n - 1
}

fn some_cut_of_size(graph: &CsrGraph, size: usize) -> bool {
    let n = graph.num_vertices();
    let mut subset: Vec<usize> = (0..size).collect();
    loop {
        let removed: std::collections::HashSet<Vertex> =
            subset.iter().map(|&v| v as Vertex).collect();
        let mask: Vec<bool> = (0..n as Vertex).map(|v| !removed.contains(&v)).collect();
        let comps = psi_graph::connectivity::connected_components_masked(graph, Some(&mask));
        if comps.num_components >= 2 {
            return true;
        }
        // next combination
        let mut i = size;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if subset[i] != i + n - size {
                subset[i] += 1;
                for j in i + 1..size {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::flow_vertex_connectivity;
    use psi_graph::generators;
    use psi_planar::generators as pg;

    #[test]
    fn matches_flow_baseline_on_small_graphs() {
        let graphs = vec![
            generators::cycle(7),
            generators::path(6),
            generators::complete(5),
            generators::wheel(7),
            generators::grid(3, 4),
            pg::octahedron().graph,
            pg::icosahedron().graph,
            pg::cube().graph,
            generators::random_stacked_triangulation(12, 3),
        ];
        for g in graphs {
            assert_eq!(
                brute_force_vertex_connectivity(&g),
                flow_vertex_connectivity(&g, usize::MAX),
                "n={}",
                g.num_vertices()
            );
        }
    }

    #[test]
    fn disconnected_is_zero() {
        let g = generators::disjoint_union(&[&generators::cycle(3), &generators::cycle(3)]);
        assert_eq!(brute_force_vertex_connectivity(&g), 0);
    }
}
