//! Eppstein's sequential cover: a single whole-graph BFS instead of the randomised
//! clustering (the deterministic baseline the paper improves on in depth).
//!
//! The target is covered by the subgraphs induced by `d + 1` consecutive BFS levels
//! (Baker's technique); every occurrence of a diameter-`d` pattern lies in one window,
//! so the decision is deterministic. The windows are solved with the same
//! bounded-treewidth DP as the core pipeline — the difference benchmarked in experiment
//! T1 is the `Θ(diameter)` BFS depth and the lack of clustering.

use planar_subiso::{dp, Pattern};
use psi_graph::{bfs, induced_subgraph, CsrGraph, Vertex};
use psi_treedecomp::{min_degree_decomposition, BinaryTreeDecomposition};

/// Decides subgraph isomorphism via the sequential single-BFS cover. Exact for
/// connected patterns.
pub fn eppstein_sequential_decide(pattern: &Pattern, target: &CsrGraph) -> bool {
    let k = pattern.k();
    if k == 0 {
        return true;
    }
    if k > target.num_vertices() {
        return false;
    }
    assert!(
        pattern.is_connected(),
        "the sequential cover handles connected patterns"
    );
    let d = pattern.diameter();
    let n = target.num_vertices();
    let mut visited = vec![false; n];
    // One BFS per connected component of the target.
    for root in 0..n as Vertex {
        if visited[root as usize] {
            continue;
        }
        let tree = bfs(target, root);
        for &v in &tree.order {
            visited[v as usize] = true;
        }
        let levels = tree.levels();
        let max_level = levels.len().saturating_sub(1);
        let last_start = max_level.saturating_sub(d);
        for start in 0..=last_start {
            let end = (start + d).min(max_level);
            let verts: Vec<Vertex> = levels[start..=end].iter().flatten().copied().collect();
            if verts.len() < k {
                continue;
            }
            let sub = induced_subgraph(target, &verts);
            let td = min_degree_decomposition(&sub.graph);
            let btd = BinaryTreeDecomposition::from_decomposition(&td);
            if dp::run_sequential(&sub.graph, pattern, &btd, false).found() {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::ullmann_decide;
    use psi_graph::generators;

    #[test]
    fn agrees_with_backtracking_on_planar_graphs() {
        let targets = vec![
            generators::grid(6, 6),
            generators::triangulated_grid(6, 5),
            generators::random_stacked_triangulation(40, 1),
            generators::cycle(12),
        ];
        let patterns = vec![
            Pattern::triangle(),
            Pattern::cycle(4),
            Pattern::cycle(5),
            Pattern::path(5),
            Pattern::star(5),
            Pattern::clique(4),
        ];
        for g in &targets {
            for p in &patterns {
                assert_eq!(
                    eppstein_sequential_decide(p, g),
                    ullmann_decide(p, g),
                    "target n={} pattern k={}",
                    g.num_vertices(),
                    p.k()
                );
            }
        }
    }

    #[test]
    fn handles_disconnected_targets() {
        let g = generators::disjoint_union(&[&generators::cycle(5), &generators::grid(3, 3)]);
        assert!(eppstein_sequential_decide(&Pattern::cycle(5), &g));
        assert!(eppstein_sequential_decide(&Pattern::cycle(4), &g));
        assert!(!eppstein_sequential_decide(&Pattern::triangle(), &g));
    }
}
