//! Exact vertex connectivity via unit-capacity max-flow (Even–Tarjan), the ground-truth
//! baseline for the vertex-connectivity experiments.
//!
//! Vertex connectivity `κ(G)` equals the minimum over suitable vertex pairs `(s, t)` of
//! the maximum number of internally vertex-disjoint `s`–`t` paths, computed by Dinic's
//! algorithm on the standard vertex-split network (each vertex `v` becomes `v_in → v_out`
//! with capacity 1). Following Even–Tarjan it suffices to take `s` from a small set
//! (more than `κ` vertices: we use `min_degree + 1` candidates) and `t` over
//! non-neighbours of `s`, plus all non-adjacent pairs among the candidates.

use psi_graph::{CsrGraph, Vertex};

/// Dinic max-flow on a small integer-capacity network.
struct Dinic {
    // adjacency: per node, list of edge ids
    graph: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<i64>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        let e = self.to.len();
        self.graph[from].push(e);
        self.to.push(to);
        self.cap.push(cap);
        self.graph[to].push(e + 1);
        self.to.push(from);
        self.cap.push(0);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.graph[u] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[u] + 1;
                    queue.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: i64) -> i64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.graph[u].len() {
            let e = self.graph[u][self.iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        let mut flow = 0;
        while flow < limit && self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
                if flow >= limit {
                    break;
                }
            }
        }
        flow
    }
}

/// Maximum number of internally vertex-disjoint `s`–`t` paths (for non-adjacent `s ≠ t`),
/// capped at `limit` to keep the computation cheap when only small values matter.
pub fn local_vertex_connectivity(graph: &CsrGraph, s: Vertex, t: Vertex, limit: usize) -> usize {
    let n = graph.num_vertices();
    // node 2v = v_in, 2v + 1 = v_out
    let mut dinic = Dinic::new(2 * n);
    for v in 0..n {
        dinic.add_edge(2 * v, 2 * v + 1, 1);
    }
    for (u, v) in graph.edges() {
        dinic.add_edge(2 * u as usize + 1, 2 * v as usize, i64::MAX / 4);
        dinic.add_edge(2 * v as usize + 1, 2 * u as usize, i64::MAX / 4);
    }
    dinic.max_flow(2 * s as usize + 1, 2 * t as usize, limit as i64) as usize
}

/// Exact vertex connectivity (Even–Tarjan pair selection), capped at `cap` (pass
/// `usize::MAX` for the true value; planar callers use 6).
pub fn flow_vertex_connectivity(graph: &CsrGraph, cap: usize) -> usize {
    let n = graph.num_vertices();
    if n <= 1 {
        return 0;
    }
    if !psi_graph::is_connected(graph) {
        return 0;
    }
    if n == 2 {
        return 1;
    }
    let min_degree = graph.min_degree();
    let mut best = min_degree.min(n - 1).min(cap);
    // candidate sources: the min_degree + 1 lowest-degree vertices (more than κ of them)
    let mut by_degree: Vec<Vertex> = (0..n as Vertex).collect();
    by_degree.sort_by_key(|&v| graph.degree(v));
    let sources: Vec<Vertex> = by_degree.iter().copied().take(min_degree + 1).collect();
    for &s in &sources {
        for t in 0..n as Vertex {
            if t == s || graph.has_edge(s, t) {
                continue;
            }
            let local = local_vertex_connectivity(graph, s, t, best + 1);
            best = best.min(local);
            if best == 0 {
                return 0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generators;
    use psi_planar::generators as pg;

    #[test]
    fn known_connectivities() {
        assert_eq!(flow_vertex_connectivity(&generators::cycle(9), 6), 2);
        assert_eq!(flow_vertex_connectivity(&generators::path(5), 6), 1);
        assert_eq!(flow_vertex_connectivity(&generators::complete(5), 6), 4);
        assert_eq!(flow_vertex_connectivity(&generators::wheel(8), 6), 3);
        assert_eq!(flow_vertex_connectivity(&generators::grid(4, 4), 6), 2);
        assert_eq!(flow_vertex_connectivity(&pg::octahedron().graph, 6), 4);
        assert_eq!(flow_vertex_connectivity(&pg::icosahedron().graph, 6), 5);
        assert_eq!(flow_vertex_connectivity(&pg::double_wheel(7).graph, 6), 4);
    }

    #[test]
    fn disconnected_and_tiny() {
        let g = generators::disjoint_union(&[&generators::path(2), &generators::path(2)]);
        assert_eq!(flow_vertex_connectivity(&g, 6), 0);
        assert_eq!(flow_vertex_connectivity(&generators::path(2), 6), 1);
        assert_eq!(flow_vertex_connectivity(&CsrGraph::empty(1), 6), 0);
    }

    #[test]
    fn local_connectivity_matches_menger_on_grid() {
        let g = generators::grid(5, 5);
        // opposite corners of the grid: 2 vertex-disjoint paths
        assert_eq!(local_vertex_connectivity(&g, 0, 24, 10), 2);
        // centre to a non-neighbour boundary vertex: 4 disjoint paths leave the centre
        assert_eq!(local_vertex_connectivity(&g, 12, 0, 10), 2);
    }
}
