//! Planar (and bounded-genus) generators that carry their embedding.
//!
//! Every generator returns an [`Embedding`] whose face list validates and whose genus is
//! what the name promises. These are the target-graph families of the experiment suite:
//! grids and triangulated grids (diameter `Θ(√n)` planar graphs), random stacked
//! triangulations (maximal planar graphs), cycles and wheels (low-connectivity
//! controls), platonic solids and double wheels (3-, 4- and 5-connected controls for
//! the vertex-connectivity experiments), and torus grids (genus 1 inputs for the
//! locally-bounded-treewidth generalisation).

use crate::embedding::Embedding;
use psi_graph::{GraphBuilder, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Cycle `C_n` with its two faces.
pub fn cycle_embedded(n: usize) -> Embedding {
    assert!(n >= 3);
    let graph = psi_graph::generators::cycle(n);
    let walk: Vec<Vertex> = (0..n as Vertex).collect();
    Embedding::new(graph, vec![walk.clone(), walk])
}

/// `w × h` grid with its unit-square faces plus the outer face.
pub fn grid_embedded(w: usize, h: usize) -> Embedding {
    assert!(w >= 2 && h >= 2);
    let graph = psi_graph::generators::grid(w, h);
    let idx = |r: usize, c: usize| (r * w + c) as Vertex;
    let mut faces = Vec::with_capacity((w - 1) * (h - 1) + 1);
    for r in 0..h - 1 {
        for c in 0..w - 1 {
            faces.push(vec![
                idx(r, c),
                idx(r, c + 1),
                idx(r + 1, c + 1),
                idx(r + 1, c),
            ]);
        }
    }
    faces.push(boundary_walk(w, h));
    Embedding::new(graph, faces)
}

/// `w × h` triangulated grid (one diagonal per cell) with its triangular faces plus the
/// outer face.
pub fn triangulated_grid_embedded(w: usize, h: usize) -> Embedding {
    assert!(w >= 2 && h >= 2);
    let graph = psi_graph::generators::triangulated_grid(w, h);
    let idx = |r: usize, c: usize| (r * w + c) as Vertex;
    let mut faces = Vec::with_capacity(2 * (w - 1) * (h - 1) + 1);
    for r in 0..h - 1 {
        for c in 0..w - 1 {
            // diagonal (r,c)-(r+1,c+1) splits the cell into two triangles
            faces.push(vec![idx(r, c), idx(r, c + 1), idx(r + 1, c + 1)]);
            faces.push(vec![idx(r, c), idx(r + 1, c + 1), idx(r + 1, c)]);
        }
    }
    faces.push(boundary_walk(w, h));
    Embedding::new(graph, faces)
}

fn boundary_walk(w: usize, h: usize) -> Vec<Vertex> {
    let idx = |r: usize, c: usize| (r * w + c) as Vertex;
    let mut walk = Vec::with_capacity(2 * (w + h));
    for c in 0..w {
        walk.push(idx(0, c));
    }
    for r in 1..h {
        walk.push(idx(r, w - 1));
    }
    for c in (0..w - 1).rev() {
        walk.push(idx(h - 1, c));
    }
    for r in (1..h - 1).rev() {
        walk.push(idx(r, 0));
    }
    walk
}

/// Random stacked triangulation (Apollonian network) with all of its triangular faces.
///
/// Same construction as `psi_graph::generators::random_stacked_triangulation`, but the
/// face list (including the outer triangle) is kept, so the result is a maximal planar
/// graph with `2n − 4` faces.
pub fn stacked_triangulation_embedded(n: usize, seed: u64) -> Embedding {
    assert!(n >= 3);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    // faces[0] is the outer triangle and is never subdivided, so the embedding stays a
    // triangulation of the sphere; interior insertion picks among the other faces.
    let mut faces: Vec<Vec<Vertex>> = vec![vec![0, 1, 2], vec![0, 1, 2]];
    for v in 3..n {
        let f = if faces.len() == 2 {
            1
        } else {
            rng.gen_range(1..faces.len())
        };
        let old = faces[f].clone();
        let (a, bq, c) = (old[0], old[1], old[2]);
        let v = v as Vertex;
        b.add_edge(v, a);
        b.add_edge(v, bq);
        b.add_edge(v, c);
        faces[f] = vec![a, bq, v];
        faces.push(vec![bq, c, v]);
        faces.push(vec![c, a, v]);
    }
    Embedding::new(b.build_parallel(), faces)
}

/// Wheel on `n` vertices (rim `0..n−1`, hub `n−1`): 3-connected planar.
pub fn wheel_embedded(n: usize) -> Embedding {
    assert!(n >= 4);
    let graph = psi_graph::generators::wheel(n);
    let rim = n - 1;
    let hub = rim as Vertex;
    let mut faces: Vec<Vec<Vertex>> = (0..rim)
        .map(|i| vec![i as Vertex, ((i + 1) % rim) as Vertex, hub])
        .collect();
    faces.push((0..rim as Vertex).collect());
    Embedding::new(graph, faces)
}

/// Double wheel: a rim cycle of `rim ≥ 5` vertices plus two hubs adjacent to every rim
/// vertex (hubs not adjacent to each other). 4-connected planar for `rim ≥ 5`.
pub fn double_wheel(rim: usize) -> Embedding {
    assert!(rim >= 4);
    let n = rim + 2;
    let hub_a = rim as Vertex;
    let hub_b = (rim + 1) as Vertex;
    let mut b = GraphBuilder::with_capacity(n, 3 * rim);
    for i in 0..rim {
        let u = i as Vertex;
        let v = ((i + 1) % rim) as Vertex;
        b.add_edge(u, v);
        b.add_edge(u, hub_a);
        b.add_edge(u, hub_b);
    }
    let mut faces = Vec::with_capacity(2 * rim);
    for i in 0..rim {
        let u = i as Vertex;
        let v = ((i + 1) % rim) as Vertex;
        faces.push(vec![u, v, hub_a]);
        faces.push(vec![u, v, hub_b]);
    }
    Embedding::new(b.build(), faces)
}

/// Tetrahedron (`K_4`): 3-regular, 3-connected.
pub fn tetrahedron() -> Embedding {
    let graph = psi_graph::generators::complete(4);
    let faces = vec![vec![0, 1, 2], vec![0, 3, 1], vec![1, 3, 2], vec![2, 3, 0]];
    Embedding::new(graph, faces)
}

/// Cube graph `Q_3`: 3-regular, 3-connected.
pub fn cube() -> Embedding {
    // vertex id = x + 2y + 4z
    let mut b = GraphBuilder::new(8);
    for v in 0..8u32 {
        for bit in [1u32, 2, 4] {
            let w = v ^ bit;
            if v < w {
                b.add_edge(v, w);
            }
        }
    }
    let faces = vec![
        vec![0, 1, 3, 2], // z = 0
        vec![4, 6, 7, 5], // z = 1
        vec![0, 4, 5, 1], // y = 0
        vec![2, 3, 7, 6], // y = 1
        vec![0, 2, 6, 4], // x = 0
        vec![1, 5, 7, 3], // x = 1
    ];
    Embedding::new(b.build(), faces)
}

/// Octahedron: 4-regular, 4-connected planar graph on 6 vertices.
pub fn octahedron() -> Embedding {
    // vertices: 0=+x, 1=-x, 2=+y, 3=-y, 4=+z, 5=-z; edges between all non-antipodal pairs
    let mut b = GraphBuilder::new(6);
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            let antipodal = (u / 2 == v / 2) && (u % 2 != v % 2);
            if !antipodal {
                b.add_edge(u, v);
            }
        }
    }
    let faces = vec![
        vec![0, 2, 4],
        vec![2, 1, 4],
        vec![1, 3, 4],
        vec![3, 0, 4],
        vec![2, 0, 5],
        vec![1, 2, 5],
        vec![3, 1, 5],
        vec![0, 3, 5],
    ];
    Embedding::new(b.build(), faces)
}

/// Icosahedron: 5-regular, 5-connected planar graph on 12 vertices — the canonical
/// witness that the vertex-connectivity algorithm must distinguish 4- from 5-connected.
pub fn icosahedron() -> Embedding {
    // 0 = top apex, 1..=5 upper ring, 6..=10 lower ring, 11 = bottom apex
    let upper = |i: usize| (1 + i % 5) as Vertex;
    let lower = |i: usize| (6 + i % 5) as Vertex;
    let mut b = GraphBuilder::new(12);
    for i in 0..5 {
        b.add_edge(0, upper(i));
        b.add_edge(11, lower(i));
        b.add_edge(upper(i), upper(i + 1));
        b.add_edge(lower(i), lower(i + 1));
        b.add_edge(upper(i), lower(i));
        b.add_edge(upper(i + 1), lower(i));
    }
    let mut faces = Vec::with_capacity(20);
    for i in 0..5 {
        faces.push(vec![0, upper(i), upper(i + 1)]);
        faces.push(vec![11, lower(i), lower(i + 1)]);
        faces.push(vec![upper(i), upper(i + 1), lower(i)]);
        faces.push(vec![upper(i + 1), lower(i + 1), lower(i)]);
    }
    Embedding::new(b.build(), faces)
}

/// `w × h` torus grid with its quadrilateral faces: a genus-1 (non-planar) embedding.
pub fn torus_grid_embedded(w: usize, h: usize) -> Embedding {
    assert!(w >= 3 && h >= 3);
    let graph = psi_graph::generators::torus_grid(w, h);
    let idx = |r: usize, c: usize| ((r % h) * w + (c % w)) as Vertex;
    let mut faces = Vec::with_capacity(w * h);
    for r in 0..h {
        for c in 0..w {
            faces.push(vec![
                idx(r, c),
                idx(r, c + 1),
                idx(r + 1, c + 1),
                idx(r + 1, c),
            ]);
        }
    }
    Embedding::new(graph, faces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_embedding_valid() {
        let e = wheel_embedded(8);
        e.validate().unwrap();
        assert!(e.is_planar());
    }

    #[test]
    fn double_wheel_valid_and_4_regular_on_rim() {
        let e = double_wheel(8);
        e.validate().unwrap();
        assert!(e.is_planar());
        for v in 0..8u32 {
            assert_eq!(e.graph.degree(v), 4);
        }
        assert_eq!(e.graph.degree(8), 8);
    }

    #[test]
    fn octahedron_and_icosahedron_regularity() {
        let o = octahedron();
        o.validate().unwrap();
        assert!(o.graph.vertices().all(|v| o.graph.degree(v) == 4));
        assert_eq!(o.graph.num_edges(), 12);

        let i = icosahedron();
        i.validate().unwrap();
        assert!(i.graph.vertices().all(|v| i.graph.degree(v) == 5));
        assert_eq!(i.graph.num_edges(), 30);
        assert_eq!(i.num_faces(), 20);
    }

    #[test]
    fn stacked_triangulation_deterministic() {
        let a = stacked_triangulation_embedded(50, 7);
        let b = stacked_triangulation_embedded(50, 7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.faces, b.faces);
    }

    #[test]
    fn grid_embedded_matches_plain_generator() {
        let e = grid_embedded(6, 4);
        assert_eq!(e.graph, psi_graph::generators::grid(6, 4));
    }
}
