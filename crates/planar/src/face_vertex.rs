//! The face–vertex bipartite graph of Section 5.1 (Nishizeki's construction).
//!
//! Given an embedded planar graph `G`, place one new vertex inside every face and
//! connect it to all vertices of that face, then delete the original edges. The result
//! `G'` is planar and bipartite (original vertices on one side, face vertices on the
//! other), and Lemma 5.1 relates the vertex connectivity of `G` to the length of the
//! shortest cycle of `G'` that separates the original vertices.

use crate::embedding::Embedding;
use psi_graph::{CsrGraph, GraphBuilder, Vertex};

/// The bipartite face–vertex graph together with the bookkeeping needed to interpret
/// its vertices.
#[derive(Clone, Debug)]
pub struct FaceVertexGraph {
    /// The bipartite graph `G'`. Vertices `0..num_original` are the original vertices of
    /// `G` (same ids); vertices `num_original..` are face vertices.
    pub graph: CsrGraph,
    /// Number of original vertices.
    pub num_original: usize,
    /// For every face vertex (indexed from 0) the face of the embedding it represents.
    pub face_of: Vec<usize>,
}

impl FaceVertexGraph {
    /// Whether `v` is one of the original vertices of `G`.
    #[inline]
    pub fn is_original(&self, v: Vertex) -> bool {
        (v as usize) < self.num_original
    }

    /// The original-vertex set `S` used by the separating-cycle search.
    pub fn original_vertices(&self) -> Vec<Vertex> {
        (0..self.num_original as Vertex).collect()
    }

    /// Maps a cycle of `G'` to the original vertices it passes through (the candidate
    /// vertex cut of `G`).
    pub fn original_vertices_of(&self, vertices: &[Vertex]) -> Vec<Vertex> {
        let mut cut: Vec<Vertex> = vertices
            .iter()
            .copied()
            .filter(|&v| self.is_original(v))
            .collect();
        cut.sort_unstable();
        cut.dedup();
        cut
    }
}

/// Builds the face–vertex bipartite graph of an embedding.
pub fn face_vertex_graph(embedding: &Embedding) -> FaceVertexGraph {
    let n = embedding.graph.num_vertices();
    let f = embedding.num_faces();
    let mut builder =
        GraphBuilder::with_capacity(n + f, embedding.faces.iter().map(|w| w.len()).sum());
    let mut face_of = Vec::with_capacity(f);
    for (fi, face) in embedding.faces.iter().enumerate() {
        let face_vertex = (n + fi) as Vertex;
        face_of.push(fi);
        // A facial walk may repeat a vertex (e.g. around a bridge); the builder
        // deduplicates the resulting parallel edges.
        for &v in face {
            builder.add_edge(face_vertex, v);
        }
    }
    FaceVertexGraph {
        graph: builder.build(),
        num_original: n,
        face_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bipartite_and_sizes() {
        let e = generators::triangulated_grid_embedded(4, 4);
        let fv = face_vertex_graph(&e);
        assert_eq!(
            fv.graph.num_vertices(),
            e.graph.num_vertices() + e.num_faces()
        );
        // bipartite: no edge between two originals or two face vertices
        for (u, v) in fv.graph.edges() {
            assert_ne!(fv.is_original(u), fv.is_original(v));
        }
        // every face vertex has degree = face length (triangles -> 3, outer face larger)
        for fi in 0..e.num_faces() {
            let fv_vertex = (fv.num_original + fi) as Vertex;
            let mut unique: Vec<Vertex> = e.faces[fi].clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(fv.graph.degree(fv_vertex), unique.len());
        }
    }

    #[test]
    fn face_vertex_graph_is_planar_by_euler_bound() {
        let e = generators::stacked_triangulation_embedded(30, 9);
        let fv = face_vertex_graph(&e);
        assert!(Embedding::passes_euler_bound(&fv.graph));
    }

    #[test]
    fn original_vertex_extraction() {
        let e = generators::cycle_embedded(5);
        let fv = face_vertex_graph(&e);
        assert_eq!(fv.original_vertices(), vec![0, 1, 2, 3, 4]);
        let cut = fv.original_vertices_of(&[0, 7, 2, 6, 0]);
        assert_eq!(cut, vec![0, 2]);
    }

    #[test]
    fn cycle_face_vertex_graph_structure() {
        // C_n has 2 faces; G' is K_{2,n}-like: every original vertex adjacent to both face vertices.
        let e = generators::cycle_embedded(6);
        let fv = face_vertex_graph(&e);
        assert_eq!(fv.graph.num_vertices(), 8);
        assert_eq!(fv.graph.num_edges(), 12);
        for v in 0..6u32 {
            assert_eq!(fv.graph.degree(v), 2);
        }
    }

    #[test]
    fn all_cycles_in_face_vertex_graph_are_even() {
        // bipartiteness check via 2-colouring BFS
        let e = generators::grid_embedded(4, 3);
        let fv = face_vertex_graph(&e);
        let g = &fv.graph;
        let mut color = vec![u8::MAX; g.num_vertices()];
        for s in 0..g.num_vertices() as Vertex {
            if color[s as usize] != u8::MAX {
                continue;
            }
            color[s as usize] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &w in g.neighbors(u) {
                    if color[w as usize] == u8::MAX {
                        color[w as usize] = 1 - color[u as usize];
                        q.push_back(w);
                    } else {
                        assert_ne!(color[w as usize], color[u as usize], "odd cycle found");
                    }
                }
            }
        }
    }
}
