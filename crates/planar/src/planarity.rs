//! Left-right (LR) planarity test, embedding construction, and Kuratowski witnesses.
//!
//! This is the "step zero" the paper delegates to Klein–Reif parallel embedding: given
//! an arbitrary [`CsrGraph`], decide planarity and produce a combinatorial embedding.
//! The engine follows the left-right algorithm (Brandes, *The left-right planarity
//! test*; the same formulation NetworkX implements): a DFS orientation with lowpoint
//! computation, a testing pass over a stack of conflict pairs, and an embedding pass
//! that turns the computed edge sides into a rotation system. Facial walks are traced
//! from the rotation system into the existing [`Embedding`] representation, which
//! validates to genus 0.
//!
//! Parallelism is the documented substitution for Klein–Reif's `O(log² n)` depth: the
//! input is decomposed into biconnected blocks with [`psi_graph::biconnected_components`]
//! (linear work), the blocks run through LR **in parallel** on the vendored
//! work-stealing pool, and the per-block rotation systems are merged at cut vertices
//! (concatenating rotations in block order keeps every block planar and the merge is
//! genus-preserving). Results are bit-identical across `PSI_THREADS` settings: block
//! ids, the per-block LR run, and the merge order are all thread-count independent.
//!
//! Non-planar inputs are rejected with a **checkable certificate**
//! ([`NonPlanarWitness`]): the failing block is shrunk by chunked greedy edge deletion
//! (each deletion re-tested with LR) to an edge-minimal non-planar subgraph, which by
//! Kuratowski's theorem is exactly a subdivision of `K5` or `K3,3`. The witness names
//! the subdivision's edges and branch vertices; [`NonPlanarWitness::verify`] re-checks
//! it *independently of the LR test* by suppressing degree-2 vertices and comparing
//! the result against the literal `K5` / `K3,3` (plus the corresponding Euler edge
//! bound), so a verified witness is a proof of non-planarity.

use crate::embedding::Embedding;
use psi_graph::{biconnected_components, CsrGraph, GraphBuilder, Vertex, INVALID_VERTEX};
use rayon::prelude::*;
use std::fmt;

/// Sentinel for "no edge" in the per-edge arrays.
const NONE_E: u32 = u32::MAX;
/// Sentinel for "unvisited" DFS heights.
const NONE_H: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------------

/// Which Kuratowski obstruction a [`NonPlanarWitness`] subdivides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KuratowskiKind {
    /// A subdivision of the complete graph `K5`.
    K5,
    /// A subdivision of the complete bipartite graph `K3,3`.
    K33,
}

/// A rejection certificate: an edge-minimal non-planar subgraph of the input, i.e. a
/// subdivision of `K5` or `K3,3` (Kuratowski's theorem).
#[derive(Clone, Debug)]
pub struct NonPlanarWitness {
    /// The subdivision's edges in input-graph vertex ids, canonicalised (`u < v`, sorted).
    pub edges: Vec<(Vertex, Vertex)>,
    /// Which obstruction the witness subdivides.
    pub kind: KuratowskiKind,
    /// The branch vertices (degree ≥ 3 in the witness): 5 for `K5`, 6 for `K3,3`.
    pub branch_vertices: Vec<Vertex>,
}

impl NonPlanarWitness {
    /// Checks the certificate against `graph` **without trusting the LR test**: every
    /// witness edge must exist in `graph`, and suppressing the witness's degree-2
    /// vertices must yield the literal `K5` / `K3,3` on
    /// [`NonPlanarWitness::branch_vertices`] (checked structurally by
    /// `classify_subdivision`: exact branch degrees, all ten / all nine cross pairs,
    /// no stray components). A witness passing this check is a genuine Kuratowski
    /// subdivision inside `graph`, which proves non-planarity by Kuratowski's
    /// theorem — both obstructions violate their Euler edge bound (`K5`:
    /// `10 > 3·5 − 6`; `K3,3` bipartite: `9 > 2·6 − 4`), so no further arithmetic is
    /// needed here.
    pub fn verify(&self, graph: &CsrGraph) -> bool {
        let n = graph.num_vertices();
        if self
            .edges
            .iter()
            .any(|&(u, v)| (u as usize) >= n || (v as usize) >= n || !graph.has_edge(u, v))
        {
            return false;
        }
        let Some((kind, mut branch, _suppressed)) = classify_subdivision(&self.edges) else {
            return false;
        };
        branch.sort_unstable();
        let mut expected = self.branch_vertices.clone();
        expected.sort_unstable();
        kind == self.kind && branch == expected
    }

    /// Number of edges in the witness subdivision.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

impl fmt::Display for NonPlanarWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-planar: {} subdivision on {} edges, branch vertices {:?}",
            match self.kind {
                KuratowskiKind::K5 => "K5",
                KuratowskiKind::K33 => "K3,3",
            },
            self.edges.len(),
            self.branch_vertices
        )
    }
}

impl std::error::Error for NonPlanarWitness {}

// ---------------------------------------------------------------------------
// Rotation systems
// ---------------------------------------------------------------------------

/// A combinatorial embedding given as the clockwise cyclic neighbour order of every
/// vertex. Slot `i` of [`RotationSystem::rotation_of`] is a permutation of the CSR
/// neighbour list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotationSystem {
    offsets: Vec<usize>,
    rot: Vec<Vertex>,
}

impl RotationSystem {
    /// The clockwise neighbour order of `v`.
    #[inline]
    pub fn rotation_of(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.rot[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Traces the facial walks of the rotation system: the successor of dart `v → w`
    /// is `w → x` where `x` precedes `v` in the rotation of `w` (the usual
    /// face-tracing rule for clockwise rotations). Isolated vertices contribute one
    /// singleton face each, so every vertex lies on at least one face.
    pub fn faces(&self, graph: &CsrGraph) -> Vec<Vec<Vertex>> {
        let n = self.num_vertices();
        debug_assert_eq!(n, graph.num_vertices());
        // pos_sorted[offsets[w] + sorted_idx] = rotation slot of that neighbour, so the
        // reversal step is one binary search in the sorted CSR list.
        let mut pos_sorted = vec![0u32; self.rot.len()];
        for w in 0..n {
            let nbrs = graph.neighbors(w as Vertex);
            let base = self.offsets[w];
            for (slot, &x) in self.rotation_of(w as Vertex).iter().enumerate() {
                let si = nbrs.binary_search(&x).expect("rotation lists a non-edge");
                pos_sorted[base + si] = slot as u32;
            }
        }
        let rot_slot = |w: Vertex, v: Vertex| -> usize {
            let si = graph
                .neighbors(w)
                .binary_search(&v)
                .expect("face walk uses a non-edge");
            pos_sorted[self.offsets[w as usize] + si] as usize
        };

        let mut visited = vec![false; self.rot.len()];
        let mut faces = Vec::new();
        for v in 0..n as Vertex {
            if graph.degree(v) == 0 {
                faces.push(vec![v]);
                continue;
            }
            for start_slot in self.offsets[v as usize]..self.offsets[v as usize + 1] {
                if visited[start_slot] {
                    continue;
                }
                let mut walk = Vec::new();
                let (mut cu, mut slot) = (v, start_slot);
                loop {
                    visited[slot] = true;
                    walk.push(cu);
                    let cw = self.rot[slot];
                    // next dart: at cw, the rotation predecessor of cu
                    let p = rot_slot(cw, cu);
                    let deg = graph.degree(cw);
                    let next = (p + deg - 1) % deg;
                    cu = cw;
                    slot = self.offsets[cw as usize] + next;
                    if slot == start_slot {
                        break;
                    }
                }
                faces.push(walk);
            }
        }
        faces
    }
}

// ---------------------------------------------------------------------------
// Edge-indexed graphs for the LR runs
// ---------------------------------------------------------------------------

/// A [`CsrGraph`] with dense undirected edge ids (in `CsrGraph::edges` order) and the
/// id of every incidence slot, so LR state can live in flat per-edge arrays.
struct LrGraph<'g> {
    csr: &'g CsrGraph,
    /// Edge id of every CSR adjacency slot (aligned with the flat neighbour array).
    ids: Vec<u32>,
    offsets: Vec<usize>,
    m: usize,
}

impl<'g> LrGraph<'g> {
    fn new(csr: &'g CsrGraph) -> Self {
        let n = csr.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + csr.degree(v as Vertex));
        }
        let mut ids = vec![NONE_E; offsets[n]];
        let mut next_id = 0u32;
        // Pass 1: slots with u < v get fresh ids in edges() order.
        for (u, &base) in offsets[..n].iter().enumerate() {
            for (i, &v) in csr.neighbors(u as Vertex).iter().enumerate() {
                if (u as Vertex) < v {
                    ids[base + i] = next_id;
                    next_id += 1;
                }
            }
        }
        // Pass 2: slots with u > v copy the id assigned at the mirror slot.
        for u in 0..n {
            let base = offsets[u];
            for (i, &v) in csr.neighbors(u as Vertex).iter().enumerate() {
                if (u as Vertex) > v {
                    let j = csr
                        .neighbors(v)
                        .binary_search(&(u as Vertex))
                        .expect("CSR adjacency not symmetric");
                    ids[base + i] = ids[offsets[v as usize] + j];
                }
            }
        }
        let m = next_id as usize;
        LrGraph {
            csr,
            ids,
            offsets,
            m,
        }
    }

    #[inline]
    fn n(&self) -> usize {
        self.csr.num_vertices()
    }

    /// `(neighbour, edge id)` incidence of `v`.
    #[inline]
    fn inc(&self, v: Vertex, i: usize) -> (Vertex, u32) {
        let base = self.offsets[v as usize];
        (self.csr.neighbors(v)[i], self.ids[base + i])
    }

    #[inline]
    fn deg(&self, v: Vertex) -> usize {
        self.csr.degree(v)
    }

    /// Edge id of `{u, v}`.
    #[inline]
    fn edge_id(&self, u: Vertex, v: Vertex) -> u32 {
        let i = self
            .csr
            .neighbors(u)
            .binary_search(&v)
            .expect("edge_id of a non-edge");
        self.ids[self.offsets[u as usize] + i]
    }
}

// ---------------------------------------------------------------------------
// The LR state machine
// ---------------------------------------------------------------------------

/// One side interval of a conflict pair (`NONE_E` on both ends means empty).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Interval {
    low: u32,
    high: u32,
}

const EMPTY_IV: Interval = Interval {
    low: NONE_E,
    high: NONE_E,
};

impl Interval {
    #[inline]
    fn is_empty(self) -> bool {
        self.low == NONE_E && self.high == NONE_E
    }
}

/// A conflict pair: return-edge intervals that must embed on different sides.
#[derive(Clone, Copy)]
struct ConflictPair {
    l: Interval,
    r: Interval,
}

impl ConflictPair {
    #[inline]
    fn swap(&mut self) {
        std::mem::swap(&mut self.l, &mut self.r);
    }
}

/// All LR per-run state, sized by the block being tested.
struct Lr<'a> {
    g: &'a LrGraph<'a>,
    roots: Vec<Vertex>,
    height: Vec<u32>,
    parent_edge: Vec<u32>,
    /// Orientation: `src[e] == INVALID_VERTEX` means not yet oriented.
    src: Vec<Vertex>,
    dst: Vec<Vertex>,
    lowpt: Vec<u32>,
    lowpt2: Vec<u32>,
    nesting: Vec<u32>,
    // testing state
    ref_: Vec<u32>,
    side: Vec<i8>,
    lowpt_edge: Vec<u32>,
    stack_bottom: Vec<usize>,
    s: Vec<ConflictPair>,
    /// Outgoing adjacency per vertex (CSR over edge ids), sorted by nesting depth.
    ord_off: Vec<usize>,
    ord: Vec<u32>,
}

impl<'a> Lr<'a> {
    fn new(g: &'a LrGraph<'a>) -> Self {
        let (n, m) = (g.n(), g.m);
        Lr {
            g,
            roots: Vec::new(),
            height: vec![NONE_H; n],
            parent_edge: vec![NONE_E; n],
            src: vec![INVALID_VERTEX; m],
            dst: vec![INVALID_VERTEX; m],
            lowpt: vec![0; m],
            lowpt2: vec![0; m],
            nesting: vec![0; m],
            ref_: vec![NONE_E; m],
            side: vec![1; m],
            lowpt_edge: vec![NONE_E; m],
            stack_bottom: vec![0; m],
            s: Vec::new(),
            ord_off: Vec::new(),
            ord: Vec::new(),
        }
    }

    /// Phase 1: DFS orientation with lowpoint computation and nesting depths.
    fn orient(&mut self) {
        let n = self.g.n();
        for root in 0..n as Vertex {
            if self.height[root as usize] != NONE_H {
                continue;
            }
            self.height[root as usize] = 0;
            self.roots.push(root);
            self.dfs_orient(root);
        }
    }

    fn dfs_orient(&mut self, root: Vertex) {
        let mut stack: Vec<(Vertex, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cur)) = stack.last_mut() {
            if *cur < self.g.deg(v) {
                let (w, e) = self.g.inc(v, *cur);
                *cur += 1;
                let e = e as usize;
                if self.src[e] != INVALID_VERTEX {
                    continue; // already oriented (from the other endpoint)
                }
                self.src[e] = v;
                self.dst[e] = w;
                self.lowpt[e] = self.height[v as usize];
                self.lowpt2[e] = self.height[v as usize];
                if self.height[w as usize] == NONE_H {
                    // tree edge; finished when w's subtree completes
                    self.parent_edge[w as usize] = e as u32;
                    self.height[w as usize] = self.height[v as usize] + 1;
                    stack.push((w, 0));
                } else {
                    // back edge
                    self.lowpt[e] = self.height[w as usize];
                    self.finish_edge(e, v);
                }
            } else {
                stack.pop();
                let pe = self.parent_edge[v as usize];
                if pe != NONE_E && v != root {
                    let p = self.src[pe as usize];
                    self.finish_edge(pe as usize, p);
                }
            }
        }
    }

    /// Computes the nesting depth of `e = (v, w)` and folds its lowpoints into the
    /// parent edge of `v`.
    fn finish_edge(&mut self, e: usize, v: Vertex) {
        self.nesting[e] = 2 * self.lowpt[e] + u32::from(self.lowpt2[e] < self.height[v as usize]);
        let pe = self.parent_edge[v as usize];
        if pe == NONE_E {
            return;
        }
        let pe = pe as usize;
        use std::cmp::Ordering::*;
        match self.lowpt[e].cmp(&self.lowpt[pe]) {
            Less => {
                self.lowpt2[pe] = self.lowpt[pe].min(self.lowpt2[e]);
                self.lowpt[pe] = self.lowpt[e];
            }
            Greater => {
                self.lowpt2[pe] = self.lowpt2[pe].min(self.lowpt[e]);
            }
            Equal => {
                self.lowpt2[pe] = self.lowpt2[pe].min(self.lowpt2[e]);
            }
        }
    }

    /// Builds the outgoing adjacency lists sorted by nesting depth (ties by edge id,
    /// which keeps the order deterministic).
    fn order_adjacency(&mut self) {
        let n = self.g.n();
        let mut counts = vec![0usize; n];
        for e in 0..self.g.m {
            if self.src[e] != INVALID_VERTEX {
                counts[self.src[e] as usize] += 1;
            }
        }
        self.ord_off = Vec::with_capacity(n + 1);
        self.ord_off.push(0);
        for (v, &count) in counts.iter().enumerate() {
            self.ord_off.push(self.ord_off[v] + count);
        }
        self.ord = vec![NONE_E; self.ord_off[n]];
        let mut cursor: Vec<usize> = self.ord_off[..n].to_vec();
        for e in 0..self.g.m {
            if self.src[e] != INVALID_VERTEX {
                let v = self.src[e] as usize;
                self.ord[cursor[v]] = e as u32;
                cursor[v] += 1;
            }
        }
        for v in 0..n {
            let slice = &mut self.ord[self.ord_off[v]..self.ord_off[v + 1]];
            slice.sort_unstable_by_key(|&e| (self.nesting[e as usize], e));
        }
    }

    #[inline]
    fn out_edges(&self, v: Vertex) -> &[u32] {
        &self.ord[self.ord_off[v as usize]..self.ord_off[v as usize + 1]]
    }

    /// Phase 2: the testing DFS. Returns `false` on an unresolvable conflict
    /// (non-planar input).
    fn test(&mut self) -> bool {
        let roots = self.roots.clone();
        for root in roots {
            if !self.dfs_test(root) {
                return false;
            }
        }
        true
    }

    fn dfs_test(&mut self, root: Vertex) -> bool {
        // Frame: (vertex, cursor into out_edges, resume-pending integrate).
        let mut stack: Vec<(Vertex, usize, bool)> = vec![(root, 0, false)];
        'frames: while let Some(&(v, mut i, resume)) = stack.last() {
            let e = self.parent_edge[v as usize];
            if resume {
                // a tree-edge child just returned: integrate its return edges
                let ei = self.out_edges(v)[i] as usize;
                if !self.integrate(v, i, ei, e) {
                    return false;
                }
                i += 1;
            }
            while i < self.out_edges(v).len() {
                let ei = self.out_edges(v)[i] as usize;
                self.stack_bottom[ei] = self.s.len();
                if ei as u32 == self.parent_edge[self.dst[ei] as usize] {
                    // tree edge: descend, integrate on return
                    *stack.last_mut().unwrap() = (v, i, true);
                    stack.push((self.dst[ei], 0, false));
                    continue 'frames;
                }
                // back edge
                self.lowpt_edge[ei] = ei as u32;
                self.s.push(ConflictPair {
                    l: EMPTY_IV,
                    r: Interval {
                        low: ei as u32,
                        high: ei as u32,
                    },
                });
                if !self.integrate(v, i, ei, e) {
                    return false;
                }
                i += 1;
            }
            // all outgoing edges of v processed: trim back edges ending at the parent
            if e != NONE_E {
                let e = e as usize;
                let u = self.src[e];
                self.trim_back_edges(u);
                // the side of e is the side of a highest return edge
                if self.lowpt[e] < self.height[u as usize] {
                    let top = self.s.last().expect("return edge without conflict pair");
                    let (hl, hr) = (top.l.high, top.r.high);
                    self.ref_[e] = if hl != NONE_E
                        && (hr == NONE_E || self.lowpt[hl as usize] > self.lowpt[hr as usize])
                    {
                        hl
                    } else {
                        hr
                    };
                }
            }
            stack.pop();
        }
        true
    }

    /// Folds the return edges of `ei` (the `i`-th outgoing edge of `v`) into the
    /// constraints of the parent edge `e`.
    fn integrate(&mut self, v: Vertex, i: usize, ei: usize, e: u32) -> bool {
        if self.lowpt[ei] >= self.height[v as usize] {
            return true; // ei has no return edge
        }
        if i == 0 {
            if e != NONE_E {
                self.lowpt_edge[e as usize] = self.lowpt_edge[ei];
            }
            return true;
        }
        self.add_constraints(ei, e as usize)
    }

    fn conflicting(&self, iv: Interval, b: usize) -> bool {
        !iv.is_empty() && self.lowpt[iv.high as usize] > self.lowpt[b]
    }

    fn add_constraints(&mut self, ei: usize, e: usize) -> bool {
        let mut p = ConflictPair {
            l: EMPTY_IV,
            r: EMPTY_IV,
        };
        // Merge the return edges of ei into p.r.
        loop {
            let mut q = self.s.pop().expect("conflict stack underflow");
            if !q.l.is_empty() {
                q.swap();
            }
            if !q.l.is_empty() {
                return false; // both sides constrained: not planar
            }
            if q.r.low != NONE_E && self.lowpt[q.r.low as usize] > self.lowpt[e] {
                // merge interval
                if p.r.is_empty() {
                    p.r.high = q.r.high;
                } else {
                    self.ref_[p.r.low as usize] = q.r.high;
                }
                p.r.low = q.r.low;
            } else if q.r.low != NONE_E {
                // align with the parent's lowpoint edge
                self.ref_[q.r.low as usize] = self.lowpt_edge[e];
            }
            if self.s.len() == self.stack_bottom[ei] {
                break;
            }
        }
        // Merge the conflicting return edges of e_1 … e_{i−1} into p.l.
        while let Some(&top) = self.s.last() {
            if !(self.conflicting(top.l, ei) || self.conflicting(top.r, ei)) {
                break;
            }
            let mut q = self.s.pop().unwrap();
            if self.conflicting(q.r, ei) {
                q.swap();
            }
            if self.conflicting(q.r, ei) {
                return false; // both sides conflict: not planar
            }
            // merge the interval below lowpt(ei) into p.r
            if p.r.low != NONE_E {
                self.ref_[p.r.low as usize] = q.r.high;
            }
            if q.r.low != NONE_E {
                p.r.low = q.r.low;
            }
            if p.l.is_empty() {
                p.l.high = q.l.high;
            } else {
                self.ref_[p.l.low as usize] = q.l.high;
            }
            p.l.low = q.l.low;
        }
        if !(p.l.is_empty() && p.r.is_empty()) {
            self.s.push(p);
        }
        true
    }

    /// Smallest lowpoint over the pair's non-empty intervals (`u32::MAX` when both
    /// sides are empty, which never equals a real height).
    fn pair_lowest(&self, p: &ConflictPair) -> u32 {
        match (p.l.is_empty(), p.r.is_empty()) {
            (true, true) => u32::MAX,
            (true, false) => self.lowpt[p.r.low as usize],
            (false, true) => self.lowpt[p.l.low as usize],
            (false, false) => self.lowpt[p.l.low as usize].min(self.lowpt[p.r.low as usize]),
        }
    }

    /// Drops and trims conflict pairs whose return edges end at `u` (the parent of the
    /// subtree just completed).
    fn trim_back_edges(&mut self, u: Vertex) {
        let hu = self.height[u as usize];
        // drop entire conflict pairs returning to u
        while let Some(top) = self.s.last() {
            if self.pair_lowest(top) != hu {
                break;
            }
            let p = self.s.pop().unwrap();
            if p.l.low != NONE_E {
                self.side[p.l.low as usize] = -1;
            }
        }
        // one more pair may need partial trimming
        if let Some(mut p) = self.s.pop() {
            while p.l.high != NONE_E && self.dst[p.l.high as usize] == u {
                p.l.high = self.ref_[p.l.high as usize];
            }
            if p.l.high == NONE_E && p.l.low != NONE_E {
                // the left interval just emptied
                self.ref_[p.l.low as usize] = p.r.low;
                self.side[p.l.low as usize] = -1;
                p.l.low = NONE_E;
            }
            while p.r.high != NONE_E && self.dst[p.r.high as usize] == u {
                p.r.high = self.ref_[p.r.high as usize];
            }
            if p.r.high == NONE_E && p.r.low != NONE_E {
                self.ref_[p.r.low as usize] = p.l.low;
                self.side[p.r.low as usize] = -1;
                p.r.low = NONE_E;
            }
            self.s.push(p);
        }
    }

    /// Resolves every edge's side by following (and collapsing) its reference chain.
    fn resolve_sides(&mut self) {
        let mut chain: Vec<u32> = Vec::new();
        for e in 0..self.g.m {
            if self.src[e] == INVALID_VERTEX {
                continue;
            }
            let mut x = e as u32;
            while self.ref_[x as usize] != NONE_E {
                chain.push(x);
                x = self.ref_[x as usize];
            }
            while let Some(y) = chain.pop() {
                let r = self.ref_[y as usize];
                self.side[y as usize] *= self.side[r as usize];
                self.ref_[y as usize] = NONE_E;
            }
        }
    }

    /// Phase 3: the embedding DFS. Consumes the testing state and returns the
    /// clockwise rotation (neighbour order) of every vertex.
    fn embed(&mut self) -> Vec<Vec<Vertex>> {
        self.resolve_sides();
        let n = self.g.n();
        // Re-sort the outgoing lists by *signed* nesting depth. The sort must be
        // stable so equal keys keep the phase-2 order.
        for v in 0..n {
            let slice = &mut self.ord[self.ord_off[v]..self.ord_off[v + 1]];
            let nesting = &self.nesting;
            let side = &self.side;
            slice.sort_by_key(|&e| side[e as usize] as i64 * nesting[e as usize] as i64);
        }

        // Dart-level cyclic lists: dart 2e leaves src[e], dart 2e+1 leaves dst[e].
        let m = self.g.m;
        let mut succ = vec![NONE_E; 2 * m];
        let mut pred = vec![NONE_E; 2 * m];
        let mut first = vec![NONE_E; n];
        for v in 0..n as Vertex {
            let out = self.out_edges(v);
            if out.is_empty() {
                continue;
            }
            let darts: Vec<u32> = out.iter().map(|&e| 2 * e).collect();
            for (i, &d) in darts.iter().enumerate() {
                succ[d as usize] = darts[(i + 1) % darts.len()];
                pred[d as usize] = darts[(i + darts.len() - 1) % darts.len()];
            }
            first[v as usize] = darts[0];
        }
        let insert_after = |succ: &mut Vec<u32>, pred: &mut Vec<u32>, r: u32, d: u32| {
            let nx = succ[r as usize];
            succ[r as usize] = d;
            pred[d as usize] = r;
            succ[d as usize] = nx;
            pred[nx as usize] = d;
        };
        let insert_before = |succ: &mut Vec<u32>, pred: &mut Vec<u32>, r: u32, d: u32| {
            let pv = pred[r as usize];
            succ[pv as usize] = d;
            pred[d as usize] = pv;
            succ[d as usize] = r;
            pred[r as usize] = d;
        };
        // Dart of the half edge a → b.
        let dart = |lr: &Lr, a: Vertex, b: Vertex| -> u32 {
            let e = lr.g.edge_id(a, b);
            if lr.src[e as usize] == a {
                2 * e
            } else {
                2 * e + 1
            }
        };

        let mut left_ref = vec![INVALID_VERTEX; n];
        let mut right_ref = vec![INVALID_VERTEX; n];
        let roots = self.roots.clone();
        for root in roots {
            let mut stack: Vec<(Vertex, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut cur)) = stack.last_mut() {
                if *cur >= self.out_edges(v).len() {
                    stack.pop();
                    continue;
                }
                let ei = self.out_edges(v)[*cur] as usize;
                *cur += 1;
                let w = self.dst[ei];
                let back_dart = 2 * ei as u32 + 1; // the half edge w → v
                if ei as u32 == self.parent_edge[w as usize] {
                    // tree edge: w's half edge to its parent becomes first in w's rotation
                    if first[w as usize] == NONE_E {
                        succ[back_dart as usize] = back_dart;
                        pred[back_dart as usize] = back_dart;
                    } else {
                        insert_before(&mut succ, &mut pred, first[w as usize], back_dart);
                    }
                    first[w as usize] = back_dart;
                    left_ref[v as usize] = w;
                    right_ref[v as usize] = w;
                    stack.push((w, 0));
                } else if self.side[ei] == 1 {
                    // back edge on the right: insert after w's reference half edge
                    let r = dart(self, w, right_ref[w as usize]);
                    insert_after(&mut succ, &mut pred, r, back_dart);
                } else {
                    // back edge on the left: insert before, and update the reference
                    let r = dart(self, w, left_ref[w as usize]);
                    insert_before(&mut succ, &mut pred, r, back_dart);
                    if first[w as usize] == r {
                        first[w as usize] = back_dart;
                    }
                    left_ref[w as usize] = self.src[ei];
                }
            }
        }

        // Read the cyclic lists back into per-vertex neighbour orders.
        (0..n as Vertex)
            .map(|v| {
                let mut order = Vec::with_capacity(self.g.deg(v));
                let start = first[v as usize];
                if start == NONE_E {
                    return order;
                }
                let mut d = start;
                loop {
                    let e = (d / 2) as usize;
                    order.push(if d.is_multiple_of(2) {
                        self.dst[e]
                    } else {
                        self.src[e]
                    });
                    d = succ[d as usize];
                    if d == start {
                        break;
                    }
                }
                debug_assert_eq!(order.len(), self.g.deg(v));
                order
            })
            .collect()
    }
}

/// Runs the LR test on an edge-indexed graph. With `embed`, also returns the rotation.
fn lr_run(g: &LrGraph<'_>, embed: bool) -> Result<Option<Vec<Vec<Vertex>>>, ()> {
    let (n, m) = (g.n(), g.m);
    if n >= 3 && m > 3 * n - 6 {
        return Err(()); // Euler bound: too many edges for any planar graph
    }
    let mut lr = Lr::new(g);
    lr.orient();
    lr.order_adjacency();
    if !lr.test() {
        return Err(());
    }
    if embed {
        Ok(Some(lr.embed()))
    } else {
        Ok(None)
    }
}

/// LR planarity test of a bare [`CsrGraph`] (no embedding construction, no witness).
pub fn is_planar_graph(graph: &CsrGraph) -> bool {
    lr_run(&LrGraph::new(graph), false).is_ok()
}

/// Planarity verdict with a witness on rejection but **no embedding work**: blocks run
/// the LR *test* phases only (no side resolution, no rotation assembly, no merge).
/// This is the cheap front-door gate for queries that never consume the embedding —
/// the verdict and the witness path are identical to [`rotation_system`]'s.
pub fn check_planarity(graph: &CsrGraph) -> Result<(), Box<NonPlanarWitness>> {
    let bc = biconnected_components(graph);
    if bc.num_components <= 1 {
        return match lr_run(&LrGraph::new(graph), false) {
            Ok(_) => Ok(()),
            Err(()) => Err(Box::new(extract_witness(graph.edges().collect()))),
        };
    }
    let block_edges = group_block_edges(graph, &bc);
    let verdicts: Vec<bool> = block_edges
        .par_iter()
        .map(|edges| planar_test_edges(edges))
        .collect();
    match verdicts.iter().position(|&ok| !ok) {
        None => Ok(()),
        Some(bad) => Err(Box::new(extract_witness(block_edges[bad].clone()))),
    }
}

/// Buckets every edge into its biconnected block (`edge_component` is in
/// `CsrGraph::edges` order) — the shared decomposition step of [`check_planarity`]
/// and [`rotation_system_with_stats`].
fn group_block_edges(
    graph: &CsrGraph,
    bc: &psi_graph::Biconnectivity,
) -> Vec<Vec<(Vertex, Vertex)>> {
    let mut block_edges: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); bc.num_components];
    for (i, (u, v)) in graph.edges().enumerate() {
        block_edges[bc.edge_component[i] as usize].push((u, v));
    }
    block_edges
}

/// Compacts an edge list onto dense local ids: returns the local graph and the
/// sorted global-vertex table (`local id -> global id`).
fn compact_to_local(edges: &[(Vertex, Vertex)]) -> (CsrGraph, Vec<Vertex>) {
    let mut verts: Vec<Vertex> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        verts.push(u);
        verts.push(v);
    }
    verts.sort_unstable();
    verts.dedup();
    let to_local = |g: Vertex| verts.binary_search(&g).unwrap() as Vertex;
    let mut b = GraphBuilder::with_capacity(verts.len(), edges.len());
    for &(u, v) in edges {
        b.add_edge(to_local(u), to_local(v));
    }
    (b.build(), verts)
}

// ---------------------------------------------------------------------------
// Block decomposition, parallel testing, merge
// ---------------------------------------------------------------------------

/// Run statistics of the planarity engine (surfaced by `bench_planarity`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanarityStats {
    /// Number of biconnected blocks tested.
    pub blocks: usize,
    /// Edge count of the largest block (the per-block LR cost driver).
    pub largest_block_edges: usize,
}

/// Computes a planar rotation system for an arbitrary graph, or a checkable
/// non-planarity certificate.
///
/// The graph is decomposed into biconnected blocks, the blocks are LR-tested and
/// embedded **in parallel**, and the per-block rotations are merged at cut vertices
/// (block-id order, thread-count independent). On failure the witness is extracted
/// from the smallest-id failing block.
pub fn rotation_system(graph: &CsrGraph) -> Result<RotationSystem, Box<NonPlanarWitness>> {
    rotation_system_with_stats(graph).0
}

/// [`rotation_system`] plus run statistics.
pub fn rotation_system_with_stats(
    graph: &CsrGraph,
) -> (
    Result<RotationSystem, Box<NonPlanarWitness>>,
    PlanarityStats,
) {
    let n = graph.num_vertices();
    let bc = biconnected_components(graph);
    let mut stats = PlanarityStats {
        blocks: bc.num_components,
        largest_block_edges: 0,
    };

    if bc.num_components <= 1 {
        // Fast path: at most one block — run LR on the graph itself, no copies.
        stats.largest_block_edges = graph.num_edges();
        let lg = LrGraph::new(graph);
        return match lr_run(&lg, true) {
            Ok(rot) => (Ok(assemble_rotation(graph, vec![rot.unwrap()])), stats),
            Err(()) => {
                let edges: Vec<(Vertex, Vertex)> = graph.edges().collect();
                (Err(Box::new(extract_witness(edges))), stats)
            }
        };
    }

    let block_edges = group_block_edges(graph, &bc);
    stats.largest_block_edges = block_edges.iter().map(|b| b.len()).max().unwrap_or(0);

    // Test + embed every block in parallel; collect is order-preserving, so the
    // outcome is independent of the thread count.
    let results: Vec<Result<BlockRotation, ()>> = block_edges
        .par_iter()
        .map(|edges| embed_block(edges))
        .collect();

    if let Some(bad) = results.iter().position(|r| r.is_err()) {
        return (
            Err(Box::new(extract_witness(block_edges[bad].clone()))),
            stats,
        );
    }

    // Merge: each vertex's rotation is the concatenation of its per-block rotations
    // in ascending block id. Blocks share only cut vertices, so interleaving their
    // rotations arbitrarily keeps every face of every block intact (the faces around
    // a cut vertex merge, exactly compensating Euler's formula for the shared vertex).
    let mut rotations: Vec<BlockRotation> = Vec::with_capacity(results.len());
    for r in results {
        rotations.push(r.unwrap());
    }
    let mut per_vertex: Vec<Vec<Vertex>> = vec![Vec::new(); n];
    for block in &mut rotations {
        for (v, order) in block.drain(..) {
            per_vertex[v as usize].extend(order);
        }
    }
    (Ok(assemble_rotation(graph, vec![per_vertex])), stats)
}

/// One block's output: each block vertex paired with its clockwise rotation, both in
/// global vertex ids.
type BlockRotation = Vec<(Vertex, Vec<Vertex>)>;

/// LR on one block: builds the local subgraph, embeds it, and returns each block
/// vertex's rotation in **global** ids.
fn embed_block(edges: &[(Vertex, Vertex)]) -> Result<BlockRotation, ()> {
    let (local, verts) = compact_to_local(edges);
    let lg = LrGraph::new(&local);
    let rot = lr_run(&lg, true)?.unwrap();
    Ok(verts
        .iter()
        .zip(rot)
        .map(|(&gv, order)| (gv, order.into_iter().map(|lw| verts[lw as usize]).collect()))
        .collect())
}

/// Flattens per-vertex rotation lists into the CSR [`RotationSystem`].
fn assemble_rotation(graph: &CsrGraph, parts: Vec<Vec<Vec<Vertex>>>) -> RotationSystem {
    let n = graph.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n {
        offsets.push(offsets[v] + graph.degree(v as Vertex));
    }
    let mut rot = vec![INVALID_VERTEX; offsets[n]];
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    for part in parts {
        for (v, order) in part.into_iter().enumerate() {
            for w in order {
                rot[cursor[v]] = w;
                cursor[v] += 1;
            }
        }
    }
    debug_assert!(rot.iter().all(|&w| w != INVALID_VERTEX));
    RotationSystem { offsets, rot }
}

/// Computes a genus-0 [`Embedding`] of an arbitrary planar graph, or the
/// non-planarity certificate. The face list satisfies [`Embedding::validate`]:
/// every edge on exactly two facial sides, every vertex on at least one face
/// (isolated vertices as singleton faces), Euler characteristic `2c` for `c`
/// connected components.
pub fn planar_embedding(graph: &CsrGraph) -> Result<Embedding, Box<NonPlanarWitness>> {
    planar_embedding_with_stats(graph).0
}

/// [`planar_embedding`] plus run statistics.
pub fn planar_embedding_with_stats(
    graph: &CsrGraph,
) -> (Result<Embedding, Box<NonPlanarWitness>>, PlanarityStats) {
    let (rot, stats) = rotation_system_with_stats(graph);
    match rot {
        Ok(rot) => {
            let faces = rot.faces(graph);
            (Ok(Embedding::new(graph.clone(), faces)), stats)
        }
        Err(w) => (Err(w), stats),
    }
}

// ---------------------------------------------------------------------------
// Witness extraction and classification
// ---------------------------------------------------------------------------

/// Exact planarity oracle on a bare edge list (vertices are compacted first).
fn planar_test_edges(edges: &[(Vertex, Vertex)]) -> bool {
    if edges.is_empty() {
        return true;
    }
    let (local, _verts) = compact_to_local(edges);
    lr_run(&LrGraph::new(&local), false).is_ok()
}

/// Shrinks a non-planar edge set to an edge-minimal non-planar subgraph by chunked
/// greedy deletion (large chunks first, then a singleton pass that guarantees
/// minimality), then classifies it as a Kuratowski subdivision.
fn extract_witness(edges: Vec<(Vertex, Vertex)>) -> NonPlanarWitness {
    debug_assert!(!planar_test_edges(&edges));
    let mut cur = edges;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let hi = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (hi - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[hi..]);
            if !planar_test_edges(&cand) {
                cur = cand; // the chunk was not needed for non-planarity
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    let mut edges: Vec<(Vertex, Vertex)> =
        cur.into_iter().map(|(u, v)| (u.min(v), u.max(v))).collect();
    edges.sort_unstable();
    let (kind, branch_vertices, _) = classify_subdivision(&edges).expect(
        "edge-minimal non-planar subgraphs are Kuratowski subdivisions; classification failed",
    );
    NonPlanarWitness {
        edges,
        kind,
        branch_vertices,
    }
}

/// Result of a successful [`classify_subdivision`]: the obstruction kind, the branch
/// vertices, and the suppressed graph's edges (branch-vertex pairs).
type Classification = (KuratowskiKind, Vec<Vertex>, Vec<(Vertex, Vertex)>);

/// Suppresses degree-2 vertices of `edges` and recognises the result as `K5` or
/// `K3,3`. Returns `None` when the edge set is not a subdivision of either.
fn classify_subdivision(edges: &[(Vertex, Vertex)]) -> Option<Classification> {
    use std::collections::HashMap;
    let mut adj: HashMap<Vertex, Vec<Vertex>> = HashMap::new();
    for &(u, v) in edges {
        if u == v {
            return None;
        }
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    // Parallel edges would break the walk below; a subdivision of a simple graph has none.
    for nbrs in adj.values_mut() {
        let before = nbrs.len();
        nbrs.sort_unstable();
        nbrs.dedup();
        if nbrs.len() != before {
            return None;
        }
    }
    let mut branch: Vec<Vertex> = adj
        .iter()
        .filter(|(_, nbrs)| nbrs.len() != 2)
        .map(|(&v, _)| v)
        .collect();
    branch.sort_unstable();
    if branch.iter().any(|v| adj[v].len() < 3) {
        return None; // degree-1 (or 0) vertices cannot occur in a subdivision
    }
    // Walk each subdivided path from every branch vertex to the next branch vertex.
    let mut branch_pairs: Vec<(Vertex, Vertex)> = Vec::new();
    let mut visited: std::collections::HashSet<Vertex> = branch.iter().copied().collect();
    for &b in &branch {
        for &start in &adj[&b] {
            let (mut prev, mut cur) = (b, start);
            while adj[&cur].len() == 2 {
                visited.insert(cur);
                let nbrs = &adj[&cur];
                let next = if nbrs[0] == prev { nbrs[1] } else { nbrs[0] };
                prev = cur;
                cur = next;
                if cur == b {
                    return None; // closed loop back to the start: not a subdivision
                }
            }
            if cur == b {
                return None;
            }
            branch_pairs.push((b.min(cur), b.max(cur)));
        }
    }
    if visited.len() != adj.len() {
        return None; // stray component (e.g. a floating cycle): not a subdivision
    }
    branch_pairs.sort_unstable();
    branch_pairs.dedup();
    if branch.len() == 5 && branch.iter().all(|v| adj[v].len() == 4) && branch_pairs.len() == 10 {
        return Some((KuratowskiKind::K5, branch, branch_pairs));
    }
    if branch.len() == 6 && branch.iter().all(|v| adj[v].len() == 3) && branch_pairs.len() == 9 {
        // (checked below: complete bipartite 3 × 3)
        // Bipartition check: the three non-neighbours of the first branch vertex must
        // form the other side, with all nine cross edges present.
        let a0 = branch[0];
        let side_b: Vec<Vertex> = branch_pairs
            .iter()
            .filter(|&&(x, y)| x == a0 || y == a0)
            .map(|&(x, y)| if x == a0 { y } else { x })
            .collect();
        if side_b.len() != 3 {
            return None;
        }
        let side_a: Vec<Vertex> = branch
            .iter()
            .copied()
            .filter(|v| !side_b.contains(v))
            .collect();
        let complete = side_a.iter().all(|&a| {
            side_b
                .iter()
                .all(|&bb| branch_pairs.contains(&(a.min(bb), a.max(bb))))
        });
        let no_internal = branch_pairs.iter().all(|&(x, y)| {
            side_a.contains(&x) != side_a.contains(&y) // every pair crosses the sides
        });
        if complete && no_internal {
            return Some((KuratowskiKind::K33, branch, branch_pairs));
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators as pg;
    use psi_graph::generators as gg;

    /// Embeds `g` and checks the full validation contract.
    fn assert_embeds(g: &CsrGraph) {
        let e = planar_embedding(g).unwrap_or_else(|w| panic!("planar input rejected: {w}"));
        e.validate().unwrap();
        let c = psi_graph::connected_components(g).num_components as i64;
        assert_eq!(
            e.euler_characteristic(),
            2 * c.max(i64::from(g.num_vertices() > 0))
        );
    }

    /// Rejects `g` and checks the witness verifies independently.
    fn assert_rejects(g: &CsrGraph) -> NonPlanarWitness {
        let w = *planar_embedding(g).expect_err("non-planar input accepted");
        assert!(w.verify(g), "witness failed independent verification: {w}");
        w
    }

    fn k33() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        for u in 0..3u32 {
            for v in 3..6u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    fn petersen() -> CsrGraph {
        let mut b = GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5); // outer cycle
            b.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            b.add_edge(i, 5 + i); // spokes
        }
        b.build()
    }

    /// Subdivides every edge of `g` `times` times.
    fn subdivide(g: &CsrGraph, times: usize) -> CsrGraph {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut b = GraphBuilder::with_capacity(n + m * times, m * (times + 1));
        let mut next = n as Vertex;
        for (u, v) in g.edges() {
            let mut prev = u;
            for _ in 0..times {
                b.add_edge(prev, next);
                prev = next;
                next += 1;
            }
            b.add_edge(prev, v);
        }
        b.build()
    }

    #[test]
    fn planar_families_embed() {
        assert_embeds(&gg::grid(7, 5));
        assert_embeds(&gg::triangulated_grid(9, 6));
        assert_embeds(&gg::cycle(8));
        assert_embeds(&gg::path(6));
        assert_embeds(&gg::path(2));
        assert_embeds(&gg::star(7));
        assert_embeds(&gg::wheel(9));
        assert_embeds(&gg::random_tree(40, 3));
        assert_embeds(&gg::random_stacked_triangulation(60, 5));
        assert_embeds(&gg::ladder(10));
        assert_embeds(&gg::caterpillar(8, 3));
    }

    #[test]
    fn platonic_graphs_embed_to_genus_zero() {
        for e in [
            pg::tetrahedron(),
            pg::cube(),
            pg::octahedron(),
            pg::icosahedron(),
        ] {
            assert_embeds(&e.graph);
        }
    }

    #[test]
    fn degenerate_inputs_embed() {
        assert_embeds(&CsrGraph::empty(0));
        assert_embeds(&CsrGraph::empty(1));
        assert_embeds(&CsrGraph::empty(5)); // isolated vertices only
    }

    #[test]
    fn disconnected_and_cut_vertex_inputs_embed() {
        let g = gg::disjoint_union(&[&gg::cycle(5), &gg::grid(3, 3), &CsrGraph::empty(2)]);
        assert_embeds(&g);
        // two triangles sharing a vertex (one cut vertex, two blocks)
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            b.add_edge(u, v);
        }
        assert_embeds(&b.build());
        // bridge-joined triangles (three blocks, one of them a bridge)
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v);
        }
        assert_embeds(&b.build());
    }

    #[test]
    fn rotation_is_a_neighbour_permutation() {
        let g = gg::triangulated_grid(8, 8);
        let rot = rotation_system(&g).unwrap();
        for v in g.vertices() {
            let mut order: Vec<Vertex> = rot.rotation_of(v).to_vec();
            order.sort_unstable();
            assert_eq!(order, g.neighbors(v));
        }
    }

    #[test]
    fn k5_rejected_with_verified_witness() {
        let w = assert_rejects(&gg::complete(5));
        assert_eq!(w.kind, KuratowskiKind::K5);
        assert_eq!(w.num_edges(), 10);
        assert_eq!(w.branch_vertices.len(), 5);
    }

    #[test]
    fn k33_rejected_with_verified_witness() {
        let w = assert_rejects(&k33());
        assert_eq!(w.kind, KuratowskiKind::K33);
        assert_eq!(w.num_edges(), 9);
    }

    #[test]
    fn k6_rejected_with_verified_witness() {
        let w = assert_rejects(&gg::complete(6));
        // the minimised core of K6 can be either obstruction (possibly using the
        // spare vertex as a subdivision point); it must verify (checked by
        // assert_rejects) and be strictly smaller than K6's 15 edges
        assert!(w.num_edges() < 15, "witness not minimised: {w}");
    }

    #[test]
    fn petersen_rejected_as_k33_subdivision() {
        // 3-regular, so no K5 subdivision exists: the witness must be a K3,3 one
        let w = assert_rejects(&petersen());
        assert_eq!(w.kind, KuratowskiKind::K33);
    }

    #[test]
    fn torus_grid_rejected() {
        assert_rejects(&gg::torus_grid(4, 4));
    }

    #[test]
    fn subdivided_obstructions_rejected() {
        let w = assert_rejects(&subdivide(&gg::complete(5), 2));
        assert_eq!(w.kind, KuratowskiKind::K5);
        assert_eq!(w.num_edges(), 30);
        let w = assert_rejects(&subdivide(&k33(), 3));
        assert_eq!(w.kind, KuratowskiKind::K33);
    }

    #[test]
    fn witness_tampering_fails_verification() {
        let g = gg::complete(5);
        let mut w = assert_rejects(&g);
        // dropping an edge breaks the subdivision
        w.edges.pop();
        assert!(!w.verify(&g));
        // an edge absent from the graph fails the subgraph check
        let w2 = NonPlanarWitness {
            edges: vec![(0, 1), (0, 2), (90, 91)],
            kind: KuratowskiKind::K5,
            branch_vertices: vec![0, 1, 2, 3, 4],
        };
        assert!(!w2.verify(&g));
    }

    #[test]
    fn is_planar_graph_agrees_with_embedding() {
        for (g, planar) in [
            (gg::grid(6, 6), true),
            (gg::complete(4), true),
            (gg::complete(5), false),
            (k33(), false),
            (gg::torus_grid(5, 3), false),
        ] {
            assert_eq!(is_planar_graph(&g), planar);
            assert_eq!(planar_embedding(&g).is_ok(), planar);
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let g = gg::disjoint_union(&[
            &gg::triangulated_grid(9, 9),
            &gg::random_stacked_triangulation(50, 11),
        ]);
        let a = rotation_system(&g).unwrap();
        let b = rotation_system(&g).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faces(&g), b.faces(&g));
    }

    #[test]
    fn stats_report_blocks() {
        let mut b = GraphBuilder::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(u, v);
        }
        let (rot, stats) = rotation_system_with_stats(&b.build());
        assert!(rot.is_ok());
        assert_eq!(stats.blocks, 3);
        assert_eq!(stats.largest_block_edges, 3);
    }
}
