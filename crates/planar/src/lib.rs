//! Planarity substrate: the LR planarity engine, combinatorial embeddings, the
//! face–vertex (Nishizeki) bipartite graph, and planar generators that carry their
//! embedding.
//!
//! The paper assumes a planar embedding is available (computable with the Klein–Reif
//! parallel algorithm in `O(n)` work and `O(log^2 n)` depth). This crate provides that
//! step for **arbitrary input graphs**: [`planarity`] implements the left-right
//! planarity test over a DFS orientation, constructs a rotation system per biconnected
//! block (blocks tested in parallel on the work-stealing pool — the documented
//! substitution for Klein–Reif's depth bound), merges the blocks at cut vertices, and
//! traces the facial walks into an [`Embedding`]. Non-planar inputs are rejected with
//! a checkable Kuratowski certificate ([`NonPlanarWitness`]).
//!
//! An embedding is represented by its **face list**: the set of facial walks, each a
//! cyclic vertex sequence. A face list in which every edge lies on exactly two facial
//! sides determines the embedding, allows the exact genus to be computed from Euler's
//! formula, and is precisely the input the vertex-connectivity construction of Section
//! 5.1 needs (one new vertex per face, connected to the face's vertices). The
//! [`generators`] still produce their embedding natively — that path skips the engine
//! and is used to cross-check it.

pub mod embedding;
pub mod face_vertex;
pub mod generators;
pub mod planarity;

pub use embedding::{Embedding, EmbeddingError};
pub use face_vertex::{face_vertex_graph, FaceVertexGraph};
pub use planarity::{
    check_planarity, is_planar_graph, planar_embedding, planar_embedding_with_stats,
    rotation_system, rotation_system_with_stats, KuratowskiKind, NonPlanarWitness, PlanarityStats,
    RotationSystem,
};
