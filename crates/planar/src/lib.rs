//! Planarity substrate: combinatorial embeddings, the face–vertex (Nishizeki) bipartite
//! graph, and planar generators that carry their embedding.
//!
//! The paper assumes a planar embedding is available (computable with the Klein–Reif
//! parallel algorithm in `O(n)` work and `O(log^2 n)` depth); as documented in
//! `DESIGN.md` we substitute generators that produce their embedding natively plus an
//! exact embedding verifier. An embedding is represented by its **face list**: the set
//! of facial walks, each a cyclic vertex sequence. A face list in which every edge lies
//! on exactly two facial sides determines the embedding, allows the exact genus to be
//! computed from Euler's formula, and is precisely the input the vertex-connectivity
//! construction of Section 5.1 needs (one new vertex per face, connected to the face's
//! vertices).

pub mod embedding;
pub mod face_vertex;
pub mod generators;

pub use embedding::{Embedding, EmbeddingError};
pub use face_vertex::{face_vertex_graph, FaceVertexGraph};
