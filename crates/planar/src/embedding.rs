//! Combinatorial embeddings given by their facial walks.

use psi_graph::{CsrGraph, Vertex};
use std::collections::HashMap;
use std::fmt;

/// Problems detected while validating an embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmbeddingError {
    /// A face walk contains two consecutive vertices that are not adjacent in the graph.
    NonEdgeOnFace { face: usize, u: Vertex, v: Vertex },
    /// An edge does not appear on exactly two facial sides.
    WrongEdgeMultiplicity { u: Vertex, v: Vertex, count: usize },
    /// A face walk is too short to be a facial cycle (singleton walks are allowed
    /// only for isolated vertices, two-vertex walks only for an edge walked on both
    /// sides).
    DegenerateFace { face: usize },
    /// Euler's formula gives a negative or non-integral genus.
    InconsistentEuler { n: usize, m: usize, f: usize },
    /// A vertex appears on no face at all (isolated vertices must be embedded as
    /// singleton faces).
    VertexNotOnAnyFace { v: Vertex },
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::NonEdgeOnFace { face, u, v } => {
                write!(f, "face {face} uses non-edge ({u},{v})")
            }
            EmbeddingError::WrongEdgeMultiplicity { u, v, count } => {
                write!(f, "edge ({u},{v}) lies on {count} facial sides, expected 2")
            }
            EmbeddingError::DegenerateFace { face } => {
                write!(f, "face {face} has fewer than 3 vertices")
            }
            EmbeddingError::InconsistentEuler { n, m, f: faces } => {
                write!(f, "Euler characteristic of n={n}, m={m}, f={faces} is not an even nonnegative genus")
            }
            EmbeddingError::VertexNotOnAnyFace { v } => {
                write!(f, "vertex {v} appears on no face")
            }
        }
    }
}

impl std::error::Error for EmbeddingError {}

/// A graph together with an embedding on an orientable surface, represented by the list
/// of its facial walks.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// The underlying simple graph.
    pub graph: CsrGraph,
    /// The facial walks; each face is a cyclic vertex sequence (the last vertex is
    /// implicitly adjacent to the first).
    pub faces: Vec<Vec<Vertex>>,
}

impl Embedding {
    /// Wraps a graph and face list without validating; call [`Embedding::validate`] to check.
    pub fn new(graph: CsrGraph, faces: Vec<Vec<Vertex>>) -> Self {
        Embedding { graph, faces }
    }

    /// Number of faces.
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// Euler characteristic `n − m + f`.
    pub fn euler_characteristic(&self) -> i64 {
        self.graph.num_vertices() as i64 - self.graph.num_edges() as i64 + self.faces.len() as i64
    }

    /// Number of connected components of the underlying graph (each embedded
    /// separately; a valid genus-`g` embedding of `c` components has Euler
    /// characteristic `2c − 2g`).
    pub fn num_components(&self) -> usize {
        if self.graph.num_vertices() == 0 {
            return 0;
        }
        psi_graph::connected_components(&self.graph).num_components
    }

    /// Total genus of the embedding surfaces (`0` for a planar embedding). Each
    /// connected component is embedded on its own surface; their genera add.
    pub fn genus(&self) -> i64 {
        (2 * self.num_components() as i64 - self.euler_characteristic()) / 2
    }

    /// Whether the embedding is planar (genus 0 — every component on a sphere).
    pub fn is_planar(&self) -> bool {
        self.euler_characteristic() == 2 * self.num_components() as i64
    }

    /// Validates the facial structure: every consecutive face pair is an edge, every
    /// edge lies on exactly two facial sides, every vertex appears on at least one
    /// face (isolated vertices as singleton faces), and Euler's formula yields a
    /// nonnegative integral genus per connected component.
    pub fn validate(&self) -> Result<(), EmbeddingError> {
        let mut edge_count: HashMap<(Vertex, Vertex), usize> = HashMap::new();
        let mut on_face = vec![false; self.graph.num_vertices()];
        for (fi, face) in self.faces.iter().enumerate() {
            match face.len() {
                0 => return Err(EmbeddingError::DegenerateFace { face: fi }),
                // A singleton face embeds an isolated vertex inside some region.
                1 => {
                    if self.graph.degree(face[0]) != 0 {
                        return Err(EmbeddingError::DegenerateFace { face: fi });
                    }
                    on_face[face[0] as usize] = true;
                    continue;
                }
                // A two-vertex walk traverses one edge on both sides — the face of an
                // isolated-edge component. Longer walks are the usual facial cycles.
                _ => {}
            }
            for i in 0..face.len() {
                let u = face[i];
                let v = face[(i + 1) % face.len()];
                if !self.graph.has_edge(u, v) {
                    return Err(EmbeddingError::NonEdgeOnFace { face: fi, u, v });
                }
                on_face[u as usize] = true;
                *edge_count.entry((u.min(v), u.max(v))).or_insert(0) += 1;
            }
        }
        for (u, v) in self.graph.edges() {
            let count = edge_count.get(&(u, v)).copied().unwrap_or(0);
            if count != 2 {
                return Err(EmbeddingError::WrongEdgeMultiplicity { u, v, count });
            }
        }
        if let Some(v) = on_face.iter().position(|&seen| !seen) {
            return Err(EmbeddingError::VertexNotOnAnyFace { v: v as Vertex });
        }
        let chi = self.euler_characteristic();
        let max_chi = 2 * self.num_components() as i64;
        if chi > max_chi || (max_chi - chi) % 2 != 0 {
            return Err(EmbeddingError::InconsistentEuler {
                n: self.graph.num_vertices(),
                m: self.graph.num_edges(),
                f: self.faces.len(),
            });
        }
        Ok(())
    }

    /// Quick necessary condition for planarity of a simple graph (`m ≤ 3n − 6` for `n ≥ 3`).
    pub fn passes_euler_bound(graph: &CsrGraph) -> bool {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        n < 3 || m <= 3 * n - 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_embedding() {
        let e = generators::cycle_embedded(3);
        e.validate().unwrap();
        assert_eq!(e.num_faces(), 2);
        assert!(e.is_planar());
        assert_eq!(e.genus(), 0);
    }

    #[test]
    fn grid_embedding_is_planar() {
        let e = generators::grid_embedded(5, 4);
        e.validate().unwrap();
        assert!(e.is_planar());
        // faces = inner squares + outer face
        assert_eq!(e.num_faces(), 4 * 3 + 1);
    }

    #[test]
    fn triangulated_grid_embedding_is_planar() {
        let e = generators::triangulated_grid_embedded(6, 5);
        e.validate().unwrap();
        assert!(e.is_planar());
    }

    #[test]
    fn stacked_triangulation_embedding_is_planar_and_maximal() {
        for n in [4usize, 10, 60] {
            let e = generators::stacked_triangulation_embedded(n, 3);
            e.validate().unwrap();
            assert!(e.is_planar(), "n={n}");
            assert_eq!(e.graph.num_edges(), 3 * n - 6);
            assert_eq!(e.num_faces(), 2 * n - 4);
            assert!(e.faces.iter().all(|f| f.len() == 3));
        }
    }

    #[test]
    fn platonic_solids_are_planar() {
        for (name, e) in [
            ("tetrahedron", generators::tetrahedron()),
            ("cube", generators::cube()),
            ("octahedron", generators::octahedron()),
            ("icosahedron", generators::icosahedron()),
        ] {
            e.validate().unwrap_or_else(|err| panic!("{name}: {err}"));
            assert!(e.is_planar(), "{name}");
        }
    }

    #[test]
    fn torus_embedding_has_genus_one() {
        let e = generators::torus_grid_embedded(4, 4);
        e.validate().unwrap();
        assert_eq!(e.genus(), 1);
        assert!(!e.is_planar());
    }

    #[test]
    fn invalid_embedding_detected() {
        let g = psi_graph::generators::cycle(4);
        // A face using a chord that is not an edge.
        let bad = Embedding::new(g.clone(), vec![vec![0, 1, 2], vec![0, 2, 3]]);
        assert!(matches!(
            bad.validate(),
            Err(EmbeddingError::NonEdgeOnFace { .. })
        ));
        // Missing the outer face: each edge appears only once.
        let bad2 = Embedding::new(g, vec![vec![0, 1, 2, 3]]);
        assert!(matches!(
            bad2.validate(),
            Err(EmbeddingError::WrongEdgeMultiplicity { .. })
        ));
    }

    #[test]
    fn isolated_vertex_must_appear_on_a_face() {
        // Triangle plus an isolated vertex 3: omitting the vertex from every face
        // used to validate silently; now it is an explicit error.
        let mut b = psi_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let walk: Vec<Vertex> = vec![0, 1, 2];
        let missing = Embedding::new(g.clone(), vec![walk.clone(), walk.clone()]);
        assert_eq!(
            missing.validate(),
            Err(EmbeddingError::VertexNotOnAnyFace { v: 3 })
        );
        // With the singleton face the embedding is a valid genus-0 embedding of two
        // components (Euler characteristic 2c = 4).
        let fixed = Embedding::new(g, vec![walk.clone(), walk, vec![3]]);
        fixed.validate().unwrap();
        assert!(fixed.is_planar());
        assert_eq!(fixed.genus(), 0);
        assert_eq!(fixed.num_components(), 2);
    }

    #[test]
    fn singleton_faces_only_for_isolated_vertices() {
        let g = psi_graph::generators::path(2);
        // A singleton face of a non-isolated vertex is degenerate.
        let bad = Embedding::new(g.clone(), vec![vec![0], vec![0, 1]]);
        assert!(matches!(
            bad.validate(),
            Err(EmbeddingError::DegenerateFace { .. })
        ));
        // The digon walk of a single-edge component is the valid embedding of K2.
        let k2 = Embedding::new(g, vec![vec![0, 1]]);
        k2.validate().unwrap();
        assert!(k2.is_planar());
    }

    #[test]
    fn disconnected_embedding_validates_per_component() {
        let g = psi_graph::generators::disjoint_union(&[
            &psi_graph::generators::cycle(3),
            &psi_graph::generators::cycle(4),
        ]);
        let t: Vec<Vertex> = vec![0, 1, 2];
        let c: Vec<Vertex> = vec![3, 4, 5, 6];
        let e = Embedding::new(g, vec![t.clone(), t, c.clone(), c]);
        e.validate().unwrap();
        assert_eq!(e.num_components(), 2);
        assert_eq!(e.euler_characteristic(), 4);
        assert!(e.is_planar());
        assert_eq!(e.genus(), 0);
    }

    #[test]
    fn euler_bound_filter() {
        assert!(Embedding::passes_euler_bound(&psi_graph::generators::grid(
            5, 5
        )));
        assert!(!Embedding::passes_euler_bound(
            &psi_graph::generators::complete(6)
        ));
        assert!(Embedding::passes_euler_bound(
            &psi_graph::generators::complete(2)
        ));
    }
}
