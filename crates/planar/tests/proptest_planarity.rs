//! Property-based tests for the planarity engine.
//!
//! Round trip: graphs from the embedded planar generators are stripped of their
//! native embedding and handed to the LR engine as bare [`CsrGraph`]s — the engine
//! must recover a validating genus-0 embedding. Rejection: the Kuratowski
//! obstructions (bare, dense, and hidden as randomly subdivided minors inside large
//! planar hosts) must be rejected with certificates that verify independently of the
//! LR test.

use proptest::prelude::*;
use psi_graph::{generators as gg, CsrGraph, GraphBuilder, Vertex};
use psi_planar::{generators as pg, is_planar_graph, planar_embedding, KuratowskiKind};

/// Strips the embedding off one of the embedded generator families.
fn planar_family(family: usize, a: usize, b: usize, seed: u64) -> CsrGraph {
    match family % 7 {
        0 => pg::stacked_triangulation_embedded(a.max(4) * 3, seed).graph,
        1 => pg::triangulated_grid_embedded(a.max(2), b.max(2)).graph,
        2 => pg::grid_embedded(a.max(2), b.max(2)).graph,
        3 => pg::wheel_embedded(a.max(4) + b).graph,
        4 => pg::cycle_embedded(a.max(3) + b).graph,
        5 => pg::double_wheel(a.max(5)).graph,
        _ => gg::random_tree(a * b + 2, seed),
    }
}

fn arb_planar_graph() -> impl Strategy<Value = CsrGraph> {
    (0usize..7, 2usize..9, 2usize..9, 0u64..64)
        .prop_map(|(family, a, b, seed)| planar_family(family, a, b, seed))
}

/// A disjoint union of two stripped planar families plus isolated vertices — the
/// engine must handle multiple components and merge per-component embeddings.
fn arb_disconnected_planar() -> impl Strategy<Value = CsrGraph> {
    (
        0usize..7,
        0usize..7,
        2usize..7,
        2usize..7,
        0u64..32,
        0usize..4,
    )
        .prop_map(|(f1, f2, a, b, seed, isolated)| {
            let g1 = planar_family(f1, a, b, seed);
            let g2 = planar_family(f2, b, a, seed + 1);
            let iso = CsrGraph::empty(isolated);
            gg::disjoint_union(&[&g1, &g2, &iso])
        })
}

/// Plants a subdivision of an obstruction into a planar host: `branch` vertices are
/// host vertices, every required pair is joined by a path through fresh vertices
/// (`len = 0` adds the edge directly; duplicates of host edges are deduplicated).
fn plant_subdivision(
    host: &CsrGraph,
    branch: &[Vertex],
    pairs: &[(usize, usize)],
    lens: &[usize],
) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(host.num_vertices(), host.num_edges() + 64);
    b.extend_edges(host.edges());
    let mut fresh = host.num_vertices() as Vertex;
    for (k, &(i, j)) in pairs.iter().enumerate() {
        let len = lens[k % lens.len().max(1)];
        let (u, v) = (branch[i], branch[j]);
        let mut prev = u;
        for _ in 0..len {
            b.ensure_vertex(fresh);
            b.add_edge(prev, fresh);
            prev = fresh;
            fresh += 1;
        }
        if prev != u || !host.has_edge(u, v) {
            b.add_edge(prev, v);
        }
    }
    b.build()
}

/// Well-separated host vertices of a `w × h` grid to serve as branch vertices.
fn grid_picks(w: usize, h: usize, count: usize) -> Vec<Vertex> {
    let at = |r: usize, c: usize| (r * w + c) as Vertex;
    let picks = [
        at(0, 0),
        at(0, w - 1),
        at(h - 1, 0),
        at(h - 1, w - 1),
        at(h / 2, w / 2),
        at(0, w / 2),
    ];
    picks[..count].to_vec()
}

const K5_PAIRS: [(usize, usize); 10] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 3),
    (1, 4),
    (2, 3),
    (2, 4),
    (3, 4),
];
const K33_PAIRS: [(usize, usize); 9] = [
    (0, 3),
    (0, 4),
    (0, 5),
    (1, 3),
    (1, 4),
    (1, 5),
    (2, 3),
    (2, 4),
    (2, 5),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_recovers_genus_zero_embedding(g in arb_planar_graph()) {
        let e = planar_embedding(&g);
        prop_assert!(e.is_ok(), "planar input rejected");
        let e = e.unwrap();
        prop_assert_eq!(e.validate(), Ok(()));
        prop_assert!(e.is_planar());
        prop_assert_eq!(e.genus(), 0);
        prop_assert!(is_planar_graph(&g));
    }

    #[test]
    fn engine_handles_disconnected_inputs(g in arb_disconnected_planar()) {
        let e = planar_embedding(&g);
        prop_assert!(e.is_ok(), "planar input rejected");
        let e = e.unwrap();
        prop_assert_eq!(e.validate(), Ok(()));
        prop_assert!(e.is_planar());
        // Euler characteristic is 2 per component on the sphere.
        let c = psi_graph::connected_components(&g).num_components as i64;
        prop_assert_eq!(e.euler_characteristic(), 2 * c);
    }

    #[test]
    fn maximal_planar_face_count_is_exact(n in 4usize..120, seed in 0u64..64) {
        // A maximal planar graph has exactly 2n − 4 (triangular) faces; the engine's
        // embedding must agree with the generator-native one on that count.
        let native = pg::stacked_triangulation_embedded(n, seed);
        let e = planar_embedding(&native.graph).expect("stacked triangulation rejected");
        prop_assert_eq!(e.num_faces(), 2 * n - 4);
        prop_assert_eq!(e.num_faces(), native.num_faces());
        prop_assert!(e.faces.iter().all(|f| f.len() == 3));
    }

    #[test]
    fn hidden_k5_subdivisions_rejected(
        w in 5usize..12,
        h in 5usize..12,
        lens in proptest::collection::vec(0usize..4, 10),
    ) {
        let host = gg::triangulated_grid(w, h);
        let g = plant_subdivision(&host, &grid_picks(w, h, 5), &K5_PAIRS, &lens);
        let witness = planar_embedding(&g).expect_err("hidden K5 subdivision accepted");
        prop_assert!(witness.verify(&g), "unverifiable witness: {}", witness);
        prop_assert!(!is_planar_graph(&g));
    }

    #[test]
    fn hidden_k33_subdivisions_rejected(
        w in 6usize..12,
        h in 5usize..12,
        lens in proptest::collection::vec(0usize..4, 9),
    ) {
        let host = gg::grid(w, h);
        let g = plant_subdivision(&host, &grid_picks(w, h, 6), &K33_PAIRS, &lens);
        let witness = planar_embedding(&g).expect_err("hidden K3,3 subdivision accepted");
        prop_assert!(witness.verify(&g), "unverifiable witness: {}", witness);
    }
}

#[test]
fn canonical_obstructions_rejected_with_verified_witnesses() {
    // The satellite checklist: K5, K3,3, K6, and a small dense random graph (an
    // expander-like instance far above the planar edge bound).
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("K5", gg::complete(5)),
        ("K3,3", gg::complete_bipartite(3, 3)),
        ("K6", gg::complete(6)),
        ("expander", gg::erdos_renyi(20, 0.4, 3)),
    ];
    for (name, g) in cases {
        match planar_embedding(&g) {
            Ok(_) => panic!("{name} accepted as planar"),
            Err(witness) => {
                assert!(witness.verify(&g), "{name}: unverifiable witness {witness}");
            }
        }
    }
}

#[test]
fn k5_witness_inside_large_planar_host_is_exact_kind() {
    // A subdivided K5 hidden in a big biconnected host: the witness must verify and
    // classify as one of the two obstructions (K5 here — the host grid is bipartite
    // only for the plain grid, so check kind on a known construction).
    let host = gg::triangulated_grid(30, 30);
    let lens = [2usize, 0, 3, 1, 2, 0, 1, 3, 2, 1];
    let g = plant_subdivision(&host, &grid_picks(30, 30, 5), &K5_PAIRS, &lens);
    let witness = planar_embedding(&g).expect_err("hidden K5 accepted");
    assert!(witness.verify(&g));
    assert!(matches!(
        witness.kind,
        KuratowskiKind::K5 | KuratowskiKind::K33
    ));
}
