//! Structured tracing: nested spans recorded into per-thread ring buffers.
//!
//! The design centers on one invariant: **the disabled path is a single relaxed
//! atomic load**. The [`span!`](crate::span) macro checks the global gate before doing anything
//! else; when tracing is off it produces an inert [`SpanGuard`] without touching a
//! thread-local, taking a lock, or allocating. Instrumentation can therefore live
//! permanently in the hot paths of the engine (cover construction, per-batch DP,
//! flush publication, snapshot reads) at a cost that is unmeasurable until someone
//! flips the gate on.
//!
//! When the gate is on, each completed span is appended to the calling thread's ring
//! buffer (bounded, overwriting the oldest records) together with its start time,
//! duration, nesting depth, and any attached `key = value` fields. Buffers are
//! registered in a global list on first use per thread, so an exporter can walk all
//! of them without cooperation from the traced threads. Two exporters are provided:
//! [`chrome_trace_json`] (the chrome://tracing / Perfetto trace-event format) and
//! [`snapshot_spans`] (typed records for tests and ad-hoc analysis).
//!
//! Timestamps are microseconds since the first use of the tracing clock in this
//! process, which is what the trace-event format expects (`ts`/`dur` in µs).

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum completed spans retained per thread; older records are overwritten.
/// 64Ki spans x ~100 bytes keeps the worst case a few MiB per traced thread.
const RING_CAP: usize = 1 << 16;

/// Maximum fields carried by one span. Excess fields are silently dropped; the
/// engine's call sites attach at most a handful of counters.
pub const MAX_FIELDS: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn threads() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static THREADS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Is tracing globally enabled? One relaxed load; this is the only cost an
/// instrumented call site pays while tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global tracing gate on or off. Spans already begun are unaffected
/// (their guards were created under the old setting); new spans observe the new
/// gate immediately.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the clock epoch before the first span so ts=0 is "tracing enabled",
        // not "first span recorded".
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Microseconds since the process's tracing epoch.
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One completed span (or instant event, when `dur_us == 0 && instant`).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Stable per-thread id assigned on the thread's first recorded span.
    pub tid: u64,
    /// Microseconds since the tracing epoch at span entry.
    pub start_us: u64,
    pub dur_us: u64,
    /// Nesting depth on the recording thread at entry (0 = outermost).
    pub depth: u32,
    pub instant: bool,
    num_fields: u8,
    fields: [(&'static str, u64); MAX_FIELDS],
}

impl SpanRecord {
    pub fn fields(&self) -> &[(&'static str, u64)] {
        &self.fields[..self.num_fields as usize]
    }
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next write position once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() < RING_CAP {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    fn in_order(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

struct ThreadRing {
    tid: u64,
    ring: Mutex<Ring>,
}

struct ThreadTrace {
    ring: Arc<ThreadRing>,
    depth: Cell<u32>,
}

thread_local! {
    static THREAD_TRACE: OnceCell<ThreadTrace> = const { OnceCell::new() };
}

fn with_thread_trace<R>(f: impl FnOnce(&ThreadTrace) -> R) -> R {
    THREAD_TRACE.with(|cell| {
        let tt = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring {
                    buf: Vec::new(),
                    head: 0,
                    dropped: 0,
                }),
            });
            threads().lock().unwrap().push(Arc::clone(&ring));
            ThreadTrace {
                ring,
                depth: Cell::new(0),
            }
        });
        f(tt)
    })
}

/// An active span. Created only while tracing is enabled; recording happens on
/// drop, so the guard must be bound to a variable (`let _span = span!(...)`), not
/// discarded with `_`.
pub struct Span {
    name: &'static str,
    start_us: u64,
    depth: u32,
    num_fields: u8,
    fields: [(&'static str, u64); MAX_FIELDS],
}

impl Span {
    /// Starts a span on the current thread. Prefer the [`span!`](crate::span) macro, which
    /// checks the enable gate first.
    pub fn begin(name: &'static str, fields: &[(&'static str, u64)]) -> Span {
        let depth = with_thread_trace(|tt| {
            let d = tt.depth.get();
            tt.depth.set(d + 1);
            d
        });
        let mut span = Span {
            name,
            start_us: now_us(),
            depth,
            num_fields: 0,
            fields: [("", 0); MAX_FIELDS],
        };
        for &(k, v) in fields {
            span.push_field(k, v);
        }
        span
    }

    fn push_field(&mut self, key: &'static str, value: u64) {
        if (self.num_fields as usize) < MAX_FIELDS {
            self.fields[self.num_fields as usize] = (key, value);
            self.num_fields += 1;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end_us = now_us();
        with_thread_trace(|tt| {
            tt.depth.set(tt.depth.get().saturating_sub(1));
            tt.ring.ring.lock().unwrap().push(SpanRecord {
                name: self.name,
                tid: tt.ring.tid,
                start_us: self.start_us,
                dur_us: end_us.saturating_sub(self.start_us),
                depth: self.depth,
                instant: false,
                num_fields: self.num_fields,
                fields: self.fields,
            });
        });
    }
}

/// The value returned by [`span!`](crate::span): either an active [`Span`] or (tracing off) an
/// inert placeholder that costs nothing to create or drop.
pub struct SpanGuard(Option<Span>);

impl SpanGuard {
    #[inline]
    pub fn active(span: Span) -> SpanGuard {
        SpanGuard(Some(span))
    }

    /// The no-op guard used while tracing is disabled. No allocation, no TLS.
    #[inline(always)]
    pub fn inert() -> SpanGuard {
        SpanGuard(None)
    }

    /// Attaches a `key = value` field to the span after creation — the idiom for
    /// counters only known at the end of a phase (the caller records them just
    /// before the guard drops). No-op while tracing is off.
    #[inline]
    pub fn field(&mut self, key: &'static str, value: u64) {
        if let Some(span) = &mut self.0 {
            span.push_field(key, value);
        }
    }

    /// Whether this guard is actually recording.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

/// Records an instant event (zero-duration marker) on the current thread.
/// Prefer the [`event!`](crate::event) macro, which checks the enable gate first.
pub fn record_instant(name: &'static str, fields: &[(&'static str, u64)]) {
    let ts = now_us();
    with_thread_trace(|tt| {
        let mut rec = SpanRecord {
            name,
            tid: tt.ring.tid,
            start_us: ts,
            dur_us: 0,
            depth: tt.depth.get(),
            instant: true,
            num_fields: 0,
            fields: [("", 0); MAX_FIELDS],
        };
        for &(k, v) in fields.iter().take(MAX_FIELDS) {
            rec.fields[rec.num_fields as usize] = (k, v);
            rec.num_fields += 1;
        }
        tt.ring.ring.lock().unwrap().push(rec);
    });
}

/// Opens a traced span over the enclosing scope.
///
/// ```
/// let mut _span = psi_obs::span!("cover.build", n = 42u64);
/// // ... work ...
/// _span.field("shards", 7);
/// ```
///
/// Bind the result to a named variable: `let _ = span!(...)` drops the guard
/// immediately and records an empty span. While tracing is disabled the expansion
/// is one relaxed load and the field expressions are **not** evaluated.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::SpanGuard::active($crate::trace::Span::begin($name, &[]))
        } else {
            $crate::trace::SpanGuard::inert()
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::SpanGuard::active($crate::trace::Span::begin(
                $name,
                &[$((stringify!($key), ($value) as u64)),+],
            ))
        } else {
            $crate::trace::SpanGuard::inert()
        }
    };
}

/// Records an instant event (a vertical marker in chrome://tracing). Same gate
/// semantics as [`span!`](crate::span): one relaxed load while tracing is off.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::record_instant($name, &[]);
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::record_instant($name, &[$((stringify!($key), ($value) as u64)),+]);
        }
    };
}

/// Discards every recorded span in every thread's ring buffer. The enable gate is
/// left as-is; in-flight spans recorded after the clear are kept.
pub fn clear() {
    for ring in threads().lock().unwrap().iter() {
        let mut ring = ring.ring.lock().unwrap();
        ring.buf.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

/// Copies out every retained span from every thread, ordered by (tid, start).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in threads().lock().unwrap().iter() {
        out.extend(ring.ring.lock().unwrap().in_order());
    }
    out.sort_by_key(|r| (r.tid, r.start_us, r.depth));
    out
}

/// Total spans overwritten by ring-buffer wraparound since the last [`clear`].
pub fn dropped_spans() -> u64 {
    threads()
        .lock()
        .unwrap()
        .iter()
        .map(|r| r.ring.lock().unwrap().dropped)
        .fold(0u64, u64::saturating_add)
}

/// Exports every retained span as chrome://tracing "trace event" JSON (the
/// `{"traceEvents": [...]}` object form). Load the string into chrome://tracing
/// or <https://ui.perfetto.dev> for a flamegraph-style view; spans appear as `X`
/// (complete) events on one lane per recording thread, instants as `i` events.
pub fn chrome_trace_json() -> String {
    let spans = snapshot_spans();
    let mut w = crate::json::JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    for rec in &spans {
        w.begin_object();
        w.key("name");
        w.string(rec.name);
        w.key("ph");
        w.string(if rec.instant { "i" } else { "X" });
        if rec.instant {
            w.key("s");
            w.string("t");
        }
        w.key("ts");
        w.u64(rec.start_us);
        if !rec.instant {
            w.key("dur");
            w.u64(rec.dur_us);
        }
        w.key("pid");
        w.u64(1);
        w.key("tid");
        w.u64(rec.tid);
        w.key("args");
        w.begin_object();
        w.key("depth");
        w.u64(rec.depth as u64);
        for &(k, v) in rec.fields() {
            w.key(k);
            w.u64(v);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("displayTimeUnit");
    w.string("ms");
    w.end_object();
    w.finish()
}
