//! Metrics registry: counters, gauges, and log-bucketed latency histograms behind
//! one [`MetricsRegistry`], exported as Prometheus-style text exposition.
//!
//! Instruments are created (or fetched) by name from the registry and shared as
//! `Arc`s, so a hot path resolves its counter once and then pays one relaxed
//! atomic op per update. Layers that already aggregate their own statistics
//! (`ArenaStats`, `SepStats`, `CoverStats`, ... in the engine) register a *source*
//! — a closure sampled at export time — instead of double-counting into live
//! instruments.
//!
//! All counter arithmetic is saturating: a metric pegging at `u64::MAX` is a
//! better failure mode than a wrapped counter silently reporting a tiny value.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    /// Saturating add (CAS loop; counters are not contended enough for this to
    /// matter, and saturation beats wraparound for telemetry).
    pub fn add(&self, delta: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(delta))
            });
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (cache sizes, queue depths, epochs).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets; covers [1ns, ~2^63 ns), i.e. everything.
const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` samples (conventionally nanoseconds).
/// Bucket `i` counts samples `v` with `floor(log2(max(v,1))) == i`; quantiles are
/// therefore resolved to within a factor of two, which is ample for latency
/// percentiles spanning nanoseconds to seconds.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let bucket = 63 - (value | 1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`), or 0 for an empty histogram. Clamped to the observed
    /// maximum so `quantile(1.0) == max()`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(bucket.load(Ordering::Relaxed));
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return upper.min(self.max());
            }
        }
        self.max()
    }

    /// (p50, p95, p99, max) in the histogram's sample unit.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
        )
    }
}

/// One sample reported by a registered source at export time.
pub struct Sample {
    pub name: String,
    pub value: f64,
}

impl Sample {
    pub fn new(name: impl Into<String>, value: f64) -> Sample {
        Sample {
            name: name.into(),
            value,
        }
    }
}

type SourceFn = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// The registry: named instruments plus export-time sources. Everything is
/// `Send + Sync`; instruments are shared out as `Arc`s so callers cache the
/// lookup outside their hot loops.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sources: Mutex<BTreeMap<String, SourceFn>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Fetches (creating on first use) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Registers (or replaces) a named source sampled at export time. Sources
    /// export gauges; use them to surface statistics a layer already aggregates
    /// elsewhere, so the numbers are never counted twice.
    pub fn register_source(
        &self,
        name: &str,
        source: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static,
    ) {
        self.sources
            .lock()
            .unwrap()
            .insert(name.to_string(), Box::new(source));
    }

    /// Drops a registered source (used when its backing object is going away).
    pub fn unregister_source(&self, name: &str) {
        self.sources.lock().unwrap().remove(name);
    }

    /// Renders the Prometheus text exposition format: counters as `counter`,
    /// gauges and source samples as `gauge`, histograms as `summary` quantiles
    /// (p50/p95/p99) plus `_sum` / `_count` / `_max` series.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self.counters.lock().unwrap().iter() {
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counter.get()
            ));
        }
        for (name, gauge) in self.gauges.lock().unwrap().iter() {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauge.get()));
        }
        for (name, histogram) in self.histograms.lock().unwrap().iter() {
            let (p50, p95, p99, max) = histogram.percentiles();
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}{{quantile=\"0.5\"}} {p50}\n"));
            out.push_str(&format!("{name}{{quantile=\"0.95\"}} {p95}\n"));
            out.push_str(&format!("{name}{{quantile=\"0.99\"}} {p99}\n"));
            out.push_str(&format!("{name}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{name}_count {}\n", histogram.count()));
            out.push_str(&format!("{name}_max {max}\n"));
        }
        let mut samples = Vec::new();
        for source in self.sources.lock().unwrap().values() {
            source(&mut samples);
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        for sample in samples {
            let value = if sample.value.fract() == 0.0 && sample.value.abs() < 1e15 {
                format!("{}", sample.value as i64)
            } else {
                format!("{}", sample.value)
            };
            out.push_str(&format!(
                "# TYPE {name} gauge\n{name} {value}\n",
                name = sample.name
            ));
        }
        out
    }
}

/// The process-global registry the engine's facade exports. Libraries may also
/// instantiate private registries; everything in this workspace uses the global
/// one so `Psi::metrics()` sees all layers.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}
