//! Minimal JSON support shared by every serializer in the workspace: a streaming
//! writer (used by the chrome-trace exporter and the bench report writer), a small
//! recursive-descent parser (used by tests and CI to validate exports without an
//! external JSON dependency), and [`BenchReport`], the one serializer behind every
//! `BENCH_*.json` baseline file.
//!
//! The writer emits compact machine format (`{"k":v,...}`); [`BenchReport`]
//! reproduces the exact line-oriented layout the bench `--check` gates parse
//! (one case object per line, fixed float precision per field), so regenerated
//! baselines stay byte-compatible with the committed ones.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes, control
/// characters; non-ASCII passes through as UTF-8, which JSON permits).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escapes `s` into a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// A streaming writer for compact JSON. The writer inserts commas automatically;
/// the caller is responsible for pairing `begin_*`/`end_*` and for emitting a
/// `key` before each value inside an object (debug assertions catch misuse).
pub struct JsonWriter {
    out: String,
    /// Per-nesting-level flag: does the next element need a leading comma?
    need_comma: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            need_comma: vec![false],
        }
    }

    fn before_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the following value call supplies the value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(name, &mut self.out);
        self.out.push_str("\":");
        // The upcoming value must not add another comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
    }

    pub fn u64(&mut self, value: u64) {
        self.before_value();
        let _ = write!(self.out, "{value}");
    }

    pub fn i64(&mut self, value: i64) {
        self.before_value();
        let _ = write!(self.out, "{value}");
    }

    /// Fixed-precision float, matching Rust's `{:.prec$}` formatting.
    pub fn f64(&mut self, value: f64, precision: usize) {
        self.before_value();
        let _ = write!(self.out, "{value:.precision$}");
    }

    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    pub fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are kept as `f64` (sufficient for validating
/// exports and reading bench baselines); object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (surrounding whitespace allowed). Errors carry
/// a byte offset and a short description.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}", pos = *pos))?;
                        // Surrogate pairs are not needed by any workspace export;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at offset {pos}", pos = *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Bench report serializer
// ---------------------------------------------------------------------------

/// One value of a bench-case row, with its committed formatting.
enum CaseField {
    U64(&'static str, u64),
    F64(&'static str, f64, usize),
    F64List(&'static str, Vec<f64>, usize),
}

/// One case row of a bench report; finished rows serialize to a single line so
/// the line-oriented `extract_case_*` baseline parsers keep working.
pub struct BenchCase {
    name: String,
    fields: Vec<CaseField>,
}

impl BenchCase {
    pub fn u64(mut self, key: &'static str, value: u64) -> BenchCase {
        self.fields.push(CaseField::U64(key, value));
        self
    }

    pub fn f64(mut self, key: &'static str, value: f64, precision: usize) -> BenchCase {
        self.fields.push(CaseField::F64(key, value, precision));
        self
    }

    pub fn f64_list(mut self, key: &'static str, values: &[f64], precision: usize) -> BenchCase {
        self.fields
            .push(CaseField::F64List(key, values.to_vec(), precision));
        self
    }

    fn render(&self, out: &mut String) {
        out.push_str("    {\"name\": ");
        out.push_str(&quote(&self.name));
        for field in &self.fields {
            out.push_str(", ");
            match field {
                CaseField::U64(key, v) => {
                    let _ = write!(out, "\"{key}\": {v}");
                }
                CaseField::F64(key, v, p) => {
                    let _ = write!(out, "\"{key}\": {v:.p$}");
                }
                CaseField::F64List(key, vs, p) => {
                    let _ = write!(out, "\"{key}\": [");
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{v:.p$}");
                    }
                    out.push(']');
                }
            }
        }
        out.push('}');
    }
}

/// The shared serializer behind every `BENCH_*.json` baseline: a schema line, an
/// optional free-text `notes` member (escaped here, once, instead of at every
/// call site), the recording host's thread count, and one case object per line.
pub struct BenchReport {
    schema: String,
    notes: Option<String>,
    host_threads: usize,
    cases: Vec<BenchCase>,
}

impl BenchReport {
    /// `host_threads` is conventionally `std::thread::available_parallelism()`.
    pub fn new(schema: &str, host_threads: usize) -> BenchReport {
        BenchReport {
            schema: schema.to_string(),
            notes: None,
            host_threads,
            cases: Vec::new(),
        }
    }

    /// Attaches the free-text provenance note emitted between `schema` and
    /// `host_threads`.
    pub fn notes(&mut self, notes: &str) {
        self.notes = Some(notes.to_string());
    }

    /// Starts a case row; chain typed field calls and pass the result to
    /// [`BenchReport::push`].
    pub fn case(&self, name: &str) -> BenchCase {
        BenchCase {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    pub fn push(&mut self, case: BenchCase) {
        self.cases.push(case);
    }

    /// Serializes the report in the committed baseline layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        out.push_str(&quote(&self.schema));
        out.push_str(",\n");
        if let Some(notes) = &self.notes {
            out.push_str("  \"notes\": ");
            out.push_str(&quote(notes));
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  \"host_threads\": {},\n  \"cases\": [\n",
            self.host_threads
        );
        for (i, case) in self.cases.iter().enumerate() {
            case.render(&mut out);
            if i + 1 != self.cases.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}
