//! `psi_obs` — the observability layer of the planar subgraph-isomorphism engine.
//!
//! Three deliberately dependency-free pillars (the workspace is offline; every
//! external crate is a vendored shim, so this crate uses `std` only):
//!
//! * [`trace`] — structured spans ([`span!`] / [`event!`]) recorded into
//!   per-thread ring buffers behind a global atomic gate. Disabled cost is a
//!   single relaxed load; enabled spans nest across the engine's real call tree
//!   (planarity embed → cover shards → per-batch DP → flush publish → snapshot
//!   reads) and export as chrome://tracing trace-event JSON.
//! * [`metrics`] — counters, gauges, and log-bucketed latency histograms behind
//!   one [`MetricsRegistry`], with export-time *sources* for statistics the
//!   engine layers already aggregate (arena, separating-DP, cover, work-stealing
//!   pool). Exported as Prometheus-style text.
//! * [`json`] — the shared JSON writer/parser: chrome-trace export, validation
//!   of both export formats without external dependencies, and [`BenchReport`],
//!   the single serializer behind every `BENCH_*.json` baseline.
//!
//! The facade (`Psi::metrics()` / `Psi::trace_export()` in `planar_subiso`)
//! composes these into the user-visible surface.

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{BenchCase, BenchReport, JsonWriter, Value};
pub use metrics::{registry, Counter, Gauge, Histogram, MetricsRegistry, Sample};
pub use trace::{
    chrome_trace_json, enabled as tracing_enabled, set_enabled as set_tracing, SpanGuard,
    SpanRecord,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p95, p99, max) = h.percentiles();
        assert_eq!(max, 1000);
        // Log buckets resolve to a factor of two.
        assert!((256..=1000).contains(&p50), "p50 = {p50}");
        assert!(p95 >= p50 && p99 >= p95 && max >= p99);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = Histogram::default();
        assert_eq!(h.percentiles(), (0, 0, 0, 0));
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_roundtrip_through_prometheus() {
        let reg = MetricsRegistry::new();
        reg.counter("psi_test_total").add(42);
        reg.gauge("psi_test_depth").set(7);
        reg.histogram("psi_test_latency_ns").record(1234);
        reg.register_source("test", |out| {
            out.push(Sample::new("psi_test_source", 3.0));
        });
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE psi_test_total counter\npsi_test_total 42\n"));
        assert!(text.contains("psi_test_depth 7\n"));
        assert!(text.contains("psi_test_latency_ns_count 1\n"));
        assert!(text.contains("psi_test_source 3\n"));
    }

    #[test]
    fn span_gate_and_nesting() {
        // The tracing gate is process-global; this is the only test in this
        // crate that toggles it.
        trace::clear();
        set_tracing(false);
        {
            let _off = span!("off.outer", n = 1u64);
        }
        assert!(trace::snapshot_spans()
            .iter()
            .all(|s| s.name != "off.outer"));
        set_tracing(true);
        {
            let mut outer = span!("t.outer", n = 3u64);
            {
                let _inner = span!("t.inner");
            }
            outer.field("late", 9);
            event!("t.marker", k = 1u64);
        }
        set_tracing(false);
        let spans = trace::snapshot_spans();
        let outer = spans.iter().find(|s| s.name == "t.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "t.inner").unwrap();
        let marker = spans.iter().find(|s| s.name == "t.marker").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(marker.instant);
        assert!(outer.fields().contains(&("n", 3)));
        assert!(outer.fields().contains(&("late", 9)));
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        let json = chrome_trace_json();
        let value = json::parse(&json).expect("chrome trace must be valid JSON");
        assert!(value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .is_some());
        trace::clear();
    }

    #[test]
    fn json_writer_and_parser_agree() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("s");
        w.string("a\"b\\c\n");
        w.key("n");
        w.u64(42);
        w.key("f");
        w.f64(1.5, 3);
        w.key("arr");
        w.begin_array();
        w.i64(-1);
        w.bool(true);
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("a\"b\\c\n"));
        assert_eq!(v.get("n").and_then(|n| n.as_f64()), Some(42.0));
        assert_eq!(v.get("f").and_then(|f| f.as_f64()), Some(1.5));
        assert_eq!(
            v.get("arr").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn bench_report_matches_committed_layout() {
        let mut report = BenchReport::new("bench_demo/v1", 4);
        report.notes("free text");
        let case = report
            .case("case_a")
            .u64("n", 65536)
            .f64("median_ms", 12.3456, 2)
            .f64_list("all_ms", &[12.34, 13.0], 2)
            .u64("pieces", 7);
        report.push(case);
        let case = report.case("case_b").f64("median_ms", 1.0, 3);
        report.push(case);
        let text = report.render();
        let expected = "{\n  \"schema\": \"bench_demo/v1\",\n  \"notes\": \"free text\",\n  \
                        \"host_threads\": 4,\n  \"cases\": [\n    {\"name\": \"case_a\", \
                        \"n\": 65536, \"median_ms\": 12.35, \"all_ms\": [12.34, 13.00], \
                        \"pieces\": 7},\n    {\"name\": \"case_b\", \"median_ms\": 1.000}\n  \
                        ]\n}\n";
        assert_eq!(text, expected);
        json::parse(&text).expect("bench report must be valid JSON");
    }
}
