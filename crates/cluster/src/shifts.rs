//! Exponential start-time shifts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws one exponential shift `δ_v ~ Exp(1/β)` (mean `β`) per vertex.
///
/// The shifts are the only source of randomness in the clustering; fixing the seed
/// fixes the clustering. As in Miller–Peng–Vladu–Xu, the maximum shift is `O(β log n)`
/// with high probability, which bounds the cluster radius.
pub fn exponential_shifts(n: usize, beta: f64, seed: u64) -> Vec<f64> {
    assert!(beta > 0.0, "beta must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Inverse-CDF sampling of Exp(rate = 1/beta): δ = -β ln(1 - U).
            let u: f64 = rng.gen_range(0.0..1.0);
            -beta * (1.0 - u).ln()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifts_are_nonnegative_and_deterministic() {
        let a = exponential_shifts(1000, 4.0, 7);
        let b = exponential_shifts(1000, 4.0, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn mean_is_close_to_beta() {
        let beta = 6.0;
        let s = exponential_shifts(200_000, beta, 11);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!(
            (mean - beta).abs() < 0.15 * beta,
            "mean {mean} too far from {beta}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = exponential_shifts(100, 4.0, 1);
        let b = exponential_shifts(100, 4.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn rejects_nonpositive_beta() {
        exponential_shifts(10, 0.0, 1);
    }
}
