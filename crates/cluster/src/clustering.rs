//! Shifted multi-source BFS computing the exponential start time clustering.

use crate::shifts::exponential_shifts;
use psi_graph::{CsrGraph, Vertex, INVALID_VERTEX};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A clustering (vertex partition) of a graph.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// For every vertex the centre vertex of its cluster.
    pub center: Vec<Vertex>,
    /// Dense cluster id (`0..num_clusters`) of every vertex.
    pub cluster_of: Vec<u32>,
    /// The vertices of every cluster, indexed by dense cluster id. The first entry of
    /// each cluster is its centre.
    pub clusters: Vec<Vec<Vertex>>,
    /// Shifted arrival time of every vertex (`dist(c, v) − δ_c + δ_max`).
    pub arrival: Vec<f64>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Edges of `graph` whose endpoints lie in different clusters.
    pub fn crossing_edges(&self, graph: &CsrGraph) -> Vec<(Vertex, Vertex)> {
        graph
            .edges()
            .filter(|&(u, v)| self.cluster_of[u as usize] != self.cluster_of[v as usize])
            .collect()
    }

    /// Fraction of edges crossing clusters (0 for an edgeless graph).
    pub fn crossing_fraction(&self, graph: &CsrGraph) -> f64 {
        let m = graph.num_edges();
        if m == 0 {
            return 0.0;
        }
        self.crossing_edges(graph).len() as f64 / m as f64
    }

    /// Whether a vertex subset lies entirely inside one cluster.
    pub fn is_within_one_cluster(&self, vertices: &[Vertex]) -> bool {
        match vertices.split_first() {
            None => true,
            Some((&first, rest)) => {
                let c = self.cluster_of[first as usize];
                rest.iter().all(|&v| self.cluster_of[v as usize] == c)
            }
        }
    }

    /// The largest *unshifted* BFS eccentricity of a cluster centre within its own
    /// cluster — an upper bound witness for the cluster (strong-)diameter guarantee.
    pub fn max_cluster_radius(&self, graph: &CsrGraph) -> u32 {
        self.clusters
            .par_iter()
            .map(|members| {
                let center = members[0];
                let in_cluster: Vec<bool> = {
                    let mut m = vec![false; graph.num_vertices()];
                    for &v in members {
                        m[v as usize] = true;
                    }
                    m
                };
                let t = psi_graph::bfs::bfs_restricted(graph, center, |v| in_cluster[v as usize]);
                members
                    .iter()
                    .map(|&v| t.dist[v as usize])
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    arrival: f64,
    vertex: Vertex,
    center: Vertex,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get the smallest arrival first, breaking
        // ties deterministically by (vertex, center).
        other
            .arrival
            .partial_cmp(&self.arrival)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
            .then_with(|| other.center.cmp(&self.center))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn assemble(center: Vec<Vertex>, arrival: Vec<f64>) -> Clustering {
    let n = center.len();
    let mut cluster_ids: Vec<Vertex> = center
        .iter()
        .copied()
        .filter(|&c| c != INVALID_VERTEX)
        .collect();
    cluster_ids.sort_unstable();
    cluster_ids.dedup();
    let mut dense = std::collections::HashMap::with_capacity(cluster_ids.len());
    for (i, &c) in cluster_ids.iter().enumerate() {
        dense.insert(c, i as u32);
    }
    let mut cluster_of = vec![u32::MAX; n];
    let mut clusters: Vec<Vec<Vertex>> = vec![Vec::new(); cluster_ids.len()];
    // Put every centre first in its own cluster list.
    for (&c, &id) in dense.iter() {
        clusters[id as usize].push(c);
    }
    for v in 0..n {
        let c = center[v];
        if c == INVALID_VERTEX {
            continue;
        }
        let id = dense[&c];
        cluster_of[v] = id;
        if v as Vertex != c {
            clusters[id as usize].push(v as Vertex);
        }
    }
    Clustering {
        center,
        cluster_of,
        clusters,
        arrival,
    }
}

/// Exact exponential start time β-clustering (sequential shifted Dijkstra reference).
///
/// Cost: `O(m log n)` time. Use [`cluster_parallel`] for large graphs; both return the
/// same clustering for the same `seed`.
pub fn cluster(graph: &CsrGraph, beta: f64, seed: u64) -> Clustering {
    let n = graph.num_vertices();
    let shifts = exponential_shifts(n, beta, seed);
    let delta_max = shifts.iter().cloned().fold(0.0f64, f64::max);

    let mut center = vec![INVALID_VERTEX; n];
    let mut arrival = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::with_capacity(n);
    for (v, &shift) in shifts.iter().enumerate() {
        heap.push(HeapEntry {
            arrival: delta_max - shift,
            vertex: v as Vertex,
            center: v as Vertex,
        });
    }
    while let Some(HeapEntry {
        arrival: a,
        vertex: v,
        center: c,
    }) = heap.pop()
    {
        if center[v as usize] != INVALID_VERTEX {
            continue;
        }
        center[v as usize] = c;
        arrival[v as usize] = a;
        for &w in graph.neighbors(v) {
            if center[w as usize] == INVALID_VERTEX {
                heap.push(HeapEntry {
                    arrival: a + 1.0,
                    vertex: w,
                    center: c,
                });
            }
        }
    }
    assemble(center, arrival)
}

/// Round-synchronous parallel exponential start time β-clustering.
///
/// Round `r` settles exactly the vertices whose shifted arrival time lies in `[r, r+1)`:
/// the candidates are centres whose own start time falls in the window plus neighbours
/// of vertices settled in round `r − 1`. Because all edges have unit weight no vertex
/// settled in a round can improve another vertex of the same round, so the rounds can be
/// processed with data-parallel sweeps and the result equals the sequential reference.
pub fn cluster_parallel(graph: &CsrGraph, beta: f64, seed: u64) -> Clustering {
    let n = graph.num_vertices();
    let shifts = exponential_shifts(n, beta, seed);
    let delta_max = shifts.iter().cloned().fold(0.0f64, f64::max);
    let start: Vec<f64> = shifts.iter().map(|&d| delta_max - d).collect();

    let mut center = vec![INVALID_VERTEX; n];
    let mut arrival = vec![f64::INFINITY; n];

    // Bucket the centres by the integer part of their start time.
    let max_round = start.iter().map(|&s| s as usize).max().unwrap_or(0);
    let mut center_buckets: Vec<Vec<Vertex>> = vec![Vec::new(); max_round + 2];
    for v in 0..n {
        center_buckets[start[v] as usize].push(v as Vertex);
    }

    let mut frontier: Vec<Vertex> = Vec::new();
    let mut settled = 0usize;
    let mut round = 0usize;
    while settled < n {
        // Candidate arrivals for this round: (arrival, vertex, centre).
        let from_frontier: Vec<(f64, Vertex, Vertex)> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                let a = arrival[u as usize] + 1.0;
                let c = center[u as usize];
                graph
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| center[w as usize] == INVALID_VERTEX)
                    .map(move |w| (a, w, c))
            })
            .collect();
        let from_centers: Vec<(f64, Vertex, Vertex)> = center_buckets
            .get(round)
            .map(|bucket| {
                bucket
                    .iter()
                    .copied()
                    .filter(|&c| center[c as usize] == INVALID_VERTEX)
                    .map(|c| (start[c as usize], c, c))
                    .collect()
            })
            .unwrap_or_default();

        // Keep, per vertex, the best candidate (same tie-breaking as the heap version:
        // smaller arrival, then smaller centre id). The explicit tie-break makes the
        // winner independent of candidate order, and a BTreeMap makes the iteration
        // below — and hence the next frontier — deterministic under the real thread
        // pool (a HashMap would randomize it per process).
        let mut best: std::collections::BTreeMap<Vertex, (f64, Vertex)> =
            std::collections::BTreeMap::new();
        for (a, v, c) in from_centers.into_iter().chain(from_frontier) {
            debug_assert!(
                a + 1e-9 >= round as f64,
                "candidate arrival {a} before round {round}"
            );
            match best.get_mut(&v) {
                None => {
                    best.insert(v, (a, c));
                }
                Some(entry) => {
                    if a < entry.0 || (a == entry.0 && c < entry.1) {
                        *entry = (a, c);
                    }
                }
            }
        }
        let mut next_frontier = Vec::with_capacity(best.len());
        let mut deferred = 0usize;
        for (v, (a, c)) in best {
            if a < (round + 1) as f64 {
                center[v as usize] = c;
                arrival[v as usize] = a;
                next_frontier.push(v);
                settled += 1;
            } else {
                // Arrives in a later round; it will be re-generated from the frontier
                // then (the frontier vertex stays settled, so we simply drop it here and
                // count on the centre bucket / future frontier to re-produce it).
                deferred += 1;
            }
        }
        // Vertices deferred from the frontier expansion must be reachable again next
        // round: keep the current frontier alive if anything was deferred.
        if deferred > 0 {
            next_frontier.extend(frontier.iter().copied());
        }
        frontier = next_frontier;
        round += 1;
        if round > 2 * (max_round + n) + 4 {
            // Safety net: should be unreachable, every connected vertex settles within
            // max_round + n rounds.
            panic!("cluster_parallel failed to converge");
        }
    }
    assemble(center, arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generators;

    fn check_partition(g: &CsrGraph, c: &Clustering) {
        let n = g.num_vertices();
        assert_eq!(c.center.len(), n);
        assert!(c.center.iter().all(|&x| x != INVALID_VERTEX));
        // clusters form a partition
        let total: usize = c.clusters.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, n);
        let mut seen = vec![false; n];
        for cl in &c.clusters {
            for &v in cl {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        // every centre belongs to its own cluster
        for (id, cl) in c.clusters.iter().enumerate() {
            let center = cl[0];
            assert_eq!(c.center[center as usize], center);
            assert_eq!(c.cluster_of[center as usize], id as u32);
        }
        // clusters are connected
        for cl in &c.clusters {
            let sub = psi_graph::induced_subgraph(g, cl);
            assert!(psi_graph::is_connected(&sub.graph), "cluster not connected");
        }
    }

    #[test]
    fn partitions_grid() {
        let g = generators::grid(12, 12);
        let c = cluster(&g, 4.0, 13);
        check_partition(&g, &c);
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..5u64 {
            let g = generators::triangulated_grid(15, 11);
            let a = cluster(&g, 6.0, seed);
            let b = cluster_parallel(&g, 6.0, seed);
            assert_eq!(a.center, b.center, "seed {seed}");
            check_partition(&g, &b);
        }
    }

    #[test]
    fn high_beta_gives_one_cluster_on_small_graph() {
        let g = generators::grid(5, 5);
        // With a huge beta, crossing probability is tiny; typically a single cluster.
        let c = cluster(&g, 1000.0, 3);
        check_partition(&g, &c);
        assert!(c.num_clusters() <= 3);
    }

    #[test]
    fn crossing_fraction_bounded_by_one_over_beta() {
        // Statistical test of Lemma 2.3: average the crossing fraction over seeds.
        let g = generators::triangulated_grid(30, 30);
        let beta = 8.0;
        let trials = 20;
        let avg: f64 = (0..trials)
            .map(|s| cluster(&g, beta, s as u64).crossing_fraction(&g))
            .sum::<f64>()
            / trials as f64;
        assert!(
            avg <= 1.0 / beta * 1.5,
            "average crossing fraction {avg} exceeds 1.5/beta = {}",
            1.5 / beta
        );
    }

    #[test]
    fn cluster_radius_is_bounded() {
        let g = generators::grid(40, 40);
        let beta = 4.0;
        let c = cluster(&g, beta, 17);
        let radius = c.max_cluster_radius(&g);
        let n = g.num_vertices() as f64;
        // Lemma 2.3: diameter O(beta log n) w.h.p.; radius <= 2 * beta * ln n is a
        // comfortable constant for the test.
        assert!(
            (radius as f64) <= 2.0 * beta * n.ln() + 2.0,
            "radius {radius} too large for beta {beta}"
        );
    }

    #[test]
    fn observation_1_spanning_tree_survives_with_constant_probability() {
        // A connected pattern of k vertices survives a 2k-clustering with prob >= 1/2.
        let k = 5usize;
        let (g, planted) = generators::grid_with_planted_cycle(20, 20, k);
        let trials = 60;
        let mut hits = 0;
        for s in 0..trials {
            let c = cluster(&g, 2.0 * k as f64, 1000 + s as u64);
            if c.is_within_one_cluster(&planted) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!(frac >= 0.4, "occurrence retained only {frac} of the time");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::random_stacked_triangulation(300, 5);
        let a = cluster(&g, 6.0, 99);
        let b = cluster(&g, 6.0, 99);
        assert_eq!(a.center, b.center);
        assert_eq!(a.cluster_of, b.cluster_of);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let c = cluster(&g, 4.0, 0);
        assert_eq!(c.num_clusters(), 1);
        let cp = cluster_parallel(&g, 4.0, 0);
        assert_eq!(cp.num_clusters(), 1);
    }

    #[test]
    fn disconnected_graph_clusters_each_component() {
        let a = generators::cycle(6);
        let b = generators::cycle(5);
        let g = generators::disjoint_union(&[&a, &b]);
        let c = cluster(&g, 3.0, 1);
        check_partition(&g, &c);
        // no cluster can span two components
        for cl in &c.clusters {
            let first_comp = cl[0] < 6;
            assert!(cl.iter().all(|&v| (v < 6) == first_comp));
        }
    }
}
