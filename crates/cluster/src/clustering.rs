//! Shifted multi-source BFS computing the exponential start time clustering.

use crate::shifts::exponential_shifts;
use psi_graph::{CsrGraph, Vertex, INVALID_VERTEX};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A clustering (vertex partition) of a graph.
///
/// Cluster membership is stored in one flat CSR-style layout (`member_starts` +
/// `members`) instead of a `Vec<Vec<Vertex>>`: the cover pipeline iterates clusters by
/// dense id (and shards them into contiguous id ranges) without re-bucketising the
/// `cluster_of` array or touching one heap allocation per cluster.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// For every vertex the centre vertex of its cluster.
    pub center: Vec<Vertex>,
    /// Dense cluster id (`0..num_clusters`) of every vertex.
    pub cluster_of: Vec<u32>,
    /// CSR offsets into `members`, one range per dense cluster id.
    member_starts: Vec<u32>,
    /// Cluster members back-to-back in cluster-id order; the first entry of each
    /// cluster's range is its centre, the rest follow in ascending vertex order.
    members: Vec<Vertex>,
    /// Position of every vertex inside `members` (the inverse permutation); gives each
    /// vertex a dense *within-shard* index for epoch-stamped scratch.
    member_pos: Vec<u32>,
    /// Shifted arrival time of every vertex (`dist(c, v) − δ_c + δ_max`).
    pub arrival: Vec<f64>,
}

impl Clustering {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.member_starts.len().saturating_sub(1)
    }

    /// The members of cluster `cid` (centre first, then ascending vertex id).
    #[inline]
    pub fn members_of(&self, cid: u32) -> &[Vertex] {
        let cid = cid as usize;
        &self.members[self.member_starts[cid] as usize..self.member_starts[cid + 1] as usize]
    }

    /// Iterates all clusters' member slices in dense-id order.
    pub fn iter_clusters(&self) -> impl ExactSizeIterator<Item = &[Vertex]> + '_ {
        (0..self.num_clusters() as u32).map(|cid| self.members_of(cid))
    }

    /// The flat member array underlying [`Clustering::members_of`].
    #[inline]
    pub fn members_flat(&self) -> &[Vertex] {
        &self.members
    }

    /// Start of cluster `cid`'s range inside [`Clustering::members_flat`].
    #[inline]
    pub fn member_start(&self, cid: u32) -> usize {
        self.member_starts[cid as usize] as usize
    }

    /// Position of vertex `v` inside [`Clustering::members_flat`].
    #[inline]
    pub fn member_position(&self, v: Vertex) -> usize {
        self.member_pos[v as usize] as usize
    }

    /// Builds a clustering from an explicit centre assignment (`center[v]` is the
    /// centre vertex of `v`'s cluster; centres must be self-assigned). Intended for
    /// tests that need a handcrafted cluster shape; the algorithmic entry points are
    /// [`cluster`] and [`cluster_parallel`].
    pub fn from_assignment(center: Vec<Vertex>, arrival: Vec<f64>) -> Clustering {
        assert_eq!(center.len(), arrival.len());
        for (v, &c) in center.iter().enumerate() {
            assert!(
                c == INVALID_VERTEX || center[c as usize] == c,
                "centre of vertex {v} is not self-assigned"
            );
        }
        assemble(center, arrival)
    }

    /// Edges of `graph` whose endpoints lie in different clusters.
    pub fn crossing_edges(&self, graph: &CsrGraph) -> Vec<(Vertex, Vertex)> {
        graph
            .edges()
            .filter(|&(u, v)| self.cluster_of[u as usize] != self.cluster_of[v as usize])
            .collect()
    }

    /// Fraction of edges crossing clusters (0 for an edgeless graph).
    pub fn crossing_fraction(&self, graph: &CsrGraph) -> f64 {
        let m = graph.num_edges();
        if m == 0 {
            return 0.0;
        }
        self.crossing_edges(graph).len() as f64 / m as f64
    }

    /// Whether a vertex subset lies entirely inside one cluster.
    pub fn is_within_one_cluster(&self, vertices: &[Vertex]) -> bool {
        match vertices.split_first() {
            None => true,
            Some((&first, rest)) => {
                let c = self.cluster_of[first as usize];
                rest.iter().all(|&v| self.cluster_of[v as usize] == c)
            }
        }
    }

    /// The largest *unshifted* BFS eccentricity of a cluster centre within its own
    /// cluster — an upper bound witness for the cluster (strong-)diameter guarantee.
    pub fn max_cluster_radius(&self, graph: &CsrGraph) -> u32 {
        let ids: Vec<u32> = (0..self.num_clusters() as u32).collect();
        ids.par_iter()
            .map(|&cid| {
                let members = self.members_of(cid);
                // membership comes from the cluster_of oracle — no O(n) mask per cluster
                let t = psi_graph::bfs::bfs_restricted(graph, members[0], |v| {
                    self.cluster_of[v as usize] == cid
                });
                members
                    .iter()
                    .map(|&v| t.dist[v as usize])
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    arrival: f64,
    vertex: Vertex,
    center: Vertex,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get the smallest arrival first, breaking
        // ties deterministically by (vertex, center).
        other
            .arrival
            .partial_cmp(&self.arrival)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
            .then_with(|| other.center.cmp(&self.center))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn assemble(center: Vec<Vertex>, arrival: Vec<f64>) -> Clustering {
    let n = center.len();
    // Dense cluster ids in ascending centre-vertex order. A vertex `c` appearing as a
    // centre always has `center[c] == c` (only self-captured vertices ever propagate
    // their id), so one linear scan assigns the dense ids without hashing.
    let mut dense = vec![u32::MAX; n];
    for &c in &center {
        if c != INVALID_VERTEX {
            dense[c as usize] = 0;
        }
    }
    let mut num_clusters = 0u32;
    for d in dense.iter_mut() {
        if *d == 0 {
            *d = num_clusters;
            num_clusters += 1;
        }
    }
    // Counting sort of the members into one flat array: centre first, then ascending
    // vertex order (the layout every consumer sees through `members_of`).
    let mut cluster_of = vec![u32::MAX; n];
    let mut sizes = vec![0u32; num_clusters as usize];
    for (v, &c) in center.iter().enumerate() {
        if c != INVALID_VERTEX {
            let id = dense[c as usize];
            cluster_of[v] = id;
            sizes[id as usize] += 1;
        }
    }
    let mut member_starts = Vec::with_capacity(num_clusters as usize + 1);
    member_starts.push(0u32);
    let mut total = 0u32;
    for &s in &sizes {
        total += s;
        member_starts.push(total);
    }
    let mut members = vec![INVALID_VERTEX; total as usize];
    let mut cursor: Vec<u32> = member_starts[..num_clusters as usize].to_vec();
    // centres claim the first slot of their range
    for (slot, &start) in cursor.iter_mut().zip(&member_starts) {
        debug_assert_eq!(*slot, start);
        *slot = start + 1;
    }
    let mut member_pos = vec![u32::MAX; n];
    for (v, &c) in center.iter().enumerate() {
        if c == INVALID_VERTEX {
            continue;
        }
        let id = dense[c as usize] as usize;
        let pos = if v as Vertex == c {
            member_starts[id]
        } else {
            let p = cursor[id];
            cursor[id] += 1;
            p
        };
        members[pos as usize] = v as Vertex;
        member_pos[v] = pos;
    }
    Clustering {
        center,
        cluster_of,
        member_starts,
        members,
        member_pos,
        arrival,
    }
}

/// Exact exponential start time β-clustering (sequential shifted Dijkstra reference).
///
/// Cost: `O(m log n)` time. Use [`cluster_parallel`] for large graphs; both return the
/// same clustering for the same `seed`.
pub fn cluster(graph: &CsrGraph, beta: f64, seed: u64) -> Clustering {
    let n = graph.num_vertices();
    let shifts = exponential_shifts(n, beta, seed);
    let delta_max = shifts.iter().cloned().fold(0.0f64, f64::max);

    let mut center = vec![INVALID_VERTEX; n];
    let mut arrival = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::with_capacity(n);
    for (v, &shift) in shifts.iter().enumerate() {
        heap.push(HeapEntry {
            arrival: delta_max - shift,
            vertex: v as Vertex,
            center: v as Vertex,
        });
    }
    while let Some(HeapEntry {
        arrival: a,
        vertex: v,
        center: c,
    }) = heap.pop()
    {
        if center[v as usize] != INVALID_VERTEX {
            continue;
        }
        center[v as usize] = c;
        arrival[v as usize] = a;
        for &w in graph.neighbors(v) {
            if center[w as usize] == INVALID_VERTEX {
                heap.push(HeapEntry {
                    arrival: a + 1.0,
                    vertex: w,
                    center: c,
                });
            }
        }
    }
    assemble(center, arrival)
}

/// Round-synchronous parallel exponential start time β-clustering.
///
/// Round `r` settles exactly the vertices whose shifted arrival time lies in `[r, r+1)`:
/// the candidates are centres whose own start time falls in the window plus neighbours
/// of vertices settled in round `r − 1`. Because all edges have unit weight no vertex
/// settled in a round can improve another vertex of the same round, so the rounds can be
/// processed with data-parallel sweeps and the result equals the sequential reference.
pub fn cluster_parallel(graph: &CsrGraph, beta: f64, seed: u64) -> Clustering {
    let n = graph.num_vertices();
    let shifts = exponential_shifts(n, beta, seed);
    let delta_max = shifts.iter().cloned().fold(0.0f64, f64::max);
    let start: Vec<f64> = shifts.iter().map(|&d| delta_max - d).collect();

    let mut center = vec![INVALID_VERTEX; n];
    let mut arrival = vec![f64::INFINITY; n];

    // Bucket the centres by the integer part of their start time.
    let max_round = start.iter().map(|&s| s as usize).max().unwrap_or(0);
    let mut center_buckets: Vec<Vec<Vertex>> = vec![Vec::new(); max_round + 2];
    for v in 0..n {
        center_buckets[start[v] as usize].push(v as Vertex);
    }

    let mut frontier: Vec<Vertex> = Vec::new();
    let mut settled = 0usize;
    let mut round = 0usize;
    while settled < n {
        // Candidate arrivals for this round: (arrival, vertex, centre).
        let from_frontier: Vec<(f64, Vertex, Vertex)> = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                let a = arrival[u as usize] + 1.0;
                let c = center[u as usize];
                graph
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| center[w as usize] == INVALID_VERTEX)
                    .map(move |w| (a, w, c))
            })
            .collect();
        let from_centers: Vec<(f64, Vertex, Vertex)> = center_buckets
            .get(round)
            .map(|bucket| {
                bucket
                    .iter()
                    .copied()
                    .filter(|&c| center[c as usize] == INVALID_VERTEX)
                    .map(|c| (start[c as usize], c, c))
                    .collect()
            })
            .unwrap_or_default();

        // Keep, per vertex, the best candidate (same tie-breaking as the heap version:
        // smaller arrival, then smaller centre id). A sort by (vertex, arrival, centre)
        // makes the first entry of each vertex run the winner and yields the vertices
        // in ascending order — the same winner and iteration order the old BTreeMap
        // merge produced (deterministic under the real thread pool), at a fraction of
        // the cost: one O(k log k) sort over a flat vector instead of k tree
        // insertions with per-node allocations.
        let mut candidates: Vec<(Vertex, f64, Vertex)> = from_centers
            .into_iter()
            .chain(from_frontier)
            .map(|(a, v, c)| {
                debug_assert!(
                    a + 1e-9 >= round as f64,
                    "candidate arrival {a} before round {round}"
                );
                (v, a, c)
            })
            .collect();
        candidates.sort_unstable_by(|x, y| {
            x.0.cmp(&y.0)
                .then_with(|| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| x.2.cmp(&y.2))
        });
        let mut next_frontier = Vec::with_capacity(candidates.len());
        let mut deferred = 0usize;
        let mut prev: Option<Vertex> = None;
        for (v, a, c) in candidates {
            if prev == Some(v) {
                continue; // a worse candidate for the same vertex
            }
            prev = Some(v);
            if a < (round + 1) as f64 {
                center[v as usize] = c;
                arrival[v as usize] = a;
                next_frontier.push(v);
                settled += 1;
            } else {
                // Arrives in a later round; it will be re-generated from the frontier
                // then (the frontier vertex stays settled, so we simply drop it here and
                // count on the centre bucket / future frontier to re-produce it).
                deferred += 1;
            }
        }
        // Vertices deferred from the frontier expansion must be reachable again next
        // round: keep the current frontier alive if anything was deferred.
        if deferred > 0 {
            next_frontier.extend(frontier.iter().copied());
        }
        frontier = next_frontier;
        round += 1;
        if round > 2 * (max_round + n) + 4 {
            // Safety net: should be unreachable, every connected vertex settles within
            // max_round + n rounds.
            panic!("cluster_parallel failed to converge");
        }
    }
    assemble(center, arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generators;

    fn check_partition(g: &CsrGraph, c: &Clustering) {
        let n = g.num_vertices();
        assert_eq!(c.center.len(), n);
        assert!(c.center.iter().all(|&x| x != INVALID_VERTEX));
        // clusters form a partition
        let total: usize = c.iter_clusters().map(|cl| cl.len()).sum();
        assert_eq!(total, n);
        let mut seen = vec![false; n];
        for cl in c.iter_clusters() {
            for &v in cl {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        // the flat layout and its inverse agree
        for (pos, &v) in c.members_flat().iter().enumerate() {
            assert_eq!(c.member_position(v), pos);
        }
        // every centre belongs to its own cluster, leads its range, and the rest of the
        // range is in ascending vertex order
        for (id, cl) in c.iter_clusters().enumerate() {
            let center = cl[0];
            assert_eq!(c.center[center as usize], center);
            assert_eq!(c.cluster_of[center as usize], id as u32);
            assert!(cl[1..].windows(2).all(|w| w[0] < w[1]));
        }
        // clusters are connected
        for cl in c.iter_clusters() {
            let sub = psi_graph::induced_subgraph(g, cl);
            assert!(psi_graph::is_connected(&sub.graph), "cluster not connected");
        }
    }

    #[test]
    fn partitions_grid() {
        let g = generators::grid(12, 12);
        let c = cluster(&g, 4.0, 13);
        check_partition(&g, &c);
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..5u64 {
            let g = generators::triangulated_grid(15, 11);
            let a = cluster(&g, 6.0, seed);
            let b = cluster_parallel(&g, 6.0, seed);
            assert_eq!(a.center, b.center, "seed {seed}");
            check_partition(&g, &b);
        }
    }

    #[test]
    fn high_beta_gives_one_cluster_on_small_graph() {
        let g = generators::grid(5, 5);
        // With a huge beta, crossing probability is tiny; typically a single cluster.
        let c = cluster(&g, 1000.0, 3);
        check_partition(&g, &c);
        assert!(c.num_clusters() <= 3);
    }

    #[test]
    fn crossing_fraction_bounded_by_one_over_beta() {
        // Statistical test of Lemma 2.3: average the crossing fraction over seeds.
        let g = generators::triangulated_grid(30, 30);
        let beta = 8.0;
        let trials = 20;
        let avg: f64 = (0..trials)
            .map(|s| cluster(&g, beta, s as u64).crossing_fraction(&g))
            .sum::<f64>()
            / trials as f64;
        assert!(
            avg <= 1.0 / beta * 1.5,
            "average crossing fraction {avg} exceeds 1.5/beta = {}",
            1.5 / beta
        );
    }

    #[test]
    fn cluster_radius_is_bounded() {
        let g = generators::grid(40, 40);
        let beta = 4.0;
        let c = cluster(&g, beta, 17);
        let radius = c.max_cluster_radius(&g);
        let n = g.num_vertices() as f64;
        // Lemma 2.3: diameter O(beta log n) w.h.p.; radius <= 2 * beta * ln n is a
        // comfortable constant for the test.
        assert!(
            (radius as f64) <= 2.0 * beta * n.ln() + 2.0,
            "radius {radius} too large for beta {beta}"
        );
    }

    #[test]
    fn observation_1_spanning_tree_survives_with_constant_probability() {
        // A connected pattern of k vertices survives a 2k-clustering with prob >= 1/2.
        let k = 5usize;
        let (g, planted) = generators::grid_with_planted_cycle(20, 20, k);
        let trials = 60;
        let mut hits = 0;
        for s in 0..trials {
            let c = cluster(&g, 2.0 * k as f64, 1000 + s as u64);
            if c.is_within_one_cluster(&planted) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!(frac >= 0.4, "occurrence retained only {frac} of the time");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::random_stacked_triangulation(300, 5);
        let a = cluster(&g, 6.0, 99);
        let b = cluster(&g, 6.0, 99);
        assert_eq!(a.center, b.center);
        assert_eq!(a.cluster_of, b.cluster_of);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let c = cluster(&g, 4.0, 0);
        assert_eq!(c.num_clusters(), 1);
        let cp = cluster_parallel(&g, 4.0, 0);
        assert_eq!(cp.num_clusters(), 1);
    }

    #[test]
    fn disconnected_graph_clusters_each_component() {
        let a = generators::cycle(6);
        let b = generators::cycle(5);
        let g = generators::disjoint_union(&[&a, &b]);
        let c = cluster(&g, 3.0, 1);
        check_partition(&g, &c);
        // no cluster can span two components
        for cl in c.iter_clusters() {
            let first_comp = cl[0] < 6;
            assert!(cl.iter().all(|&v| (v < 6) == first_comp));
        }
    }
}
