//! Incremental maintenance of the exponential start time clustering under edge flips.
//!
//! The clustering is the fixpoint of a shifted multi-source Dijkstra: every vertex `v`
//! carries the lexicographically smallest `(arrival, centre)` pair over its own start
//! candidate `(start_v, v)` and the relayed candidates `(arrival_u + 1.0, centre_u)` of
//! its neighbours. Because the exponential shifts depend only on `(n, β, seed)` — not
//! on the edge set — an edge flip perturbs the fixpoint only locally, and the paper's
//! locality is exactly what makes a < 5 ms single-edge index update possible at
//! n = 10⁶ where a from-scratch re-clustering costs hundreds of milliseconds.
//!
//! * **Insertion** only ever *lowers* values: a strict-improvement Dijkstra seeded
//!   with the two relayed candidates across the new edge settles exactly the vertices
//!   whose value changes, in nondecreasing `(arrival, vertex, centre)` order.
//! * **Deletion** only ever *raises* values: the *suspect closure* — vertices whose
//!   achieving chain crossed the deleted edge, found by walking `arrival_w ==
//!   arrival_x + 1.0` links forward from the endpoints — is re-solved exactly by a
//!   Dijkstra seeded with every suspect's own start candidate plus the relayed
//!   candidates of its non-suspect neighbours (whose values are provably unchanged).
//!
//! Both repairs reproduce the from-scratch [`cluster`](crate::cluster) /
//! [`cluster_parallel`] fixpoint *bit for bit*: arrivals
//! accumulate by repeated `+ 1.0` from the same start value along the same chains, so
//! the floating-point results are identical, not merely close. (The one theoretical
//! exception is a rounding collapse where a strictly smaller arrival becomes equal
//! after the same number of `+ 1.0` steps *and* the tie-breaking centre differs — this
//! needs two independent exponential draws within an accumulating ulp, probability
//! ≈ 10⁻¹⁴ per comparison, and is pinned by the incremental-vs-rebuild test suite.)

use crate::clustering::{cluster_parallel, Clustering};
use crate::shifts::exponential_shifts;
use psi_graph::{CsrGraph, NeighborSource, Vertex};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Mutable clustering state: per vertex the winning centre, its shifted arrival time,
/// and the (edge-independent) start time. Memberships are not materialised — clusters
/// are connected, so members are enumerable by a BFS from the centre through the
/// `centre_of` oracle, which is how the dynamic cover rebuild consumes this type.
#[derive(Clone, Debug)]
pub struct DynamicClustering {
    center: Vec<Vertex>,
    arrival: Vec<f64>,
    start: Vec<f64>,
}

#[derive(PartialEq)]
struct Candidate {
    arrival: f64,
    vertex: Vertex,
    center: Vertex,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted to pop the smallest (arrival, vertex, centre) first —
        // the same deterministic order as the sequential reference in `clustering`.
        other
            .arrival
            .partial_cmp(&self.arrival)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
            .then_with(|| other.center.cmp(&self.center))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[inline]
fn lex_less(a: f64, c: Vertex, a2: f64, c2: Vertex) -> bool {
    a < a2 || (a == a2 && c < c2)
}

impl DynamicClustering {
    /// Clusters `graph` from scratch (via [`cluster_parallel`], so the result is
    /// identical across thread counts) and retains the mutable per-vertex state.
    pub fn from_graph(graph: &CsrGraph, beta: f64, seed: u64) -> DynamicClustering {
        let clustering = cluster_parallel(graph, beta, seed);
        Self::from_clustering(&clustering, graph.num_vertices(), beta, seed)
    }

    /// Adopts an existing clustering produced with the same `(beta, seed)`,
    /// re-deriving the start times from the shifts (they are a pure function of
    /// `(n, beta, seed)`).
    pub fn from_clustering(
        clustering: &Clustering,
        n: usize,
        beta: f64,
        seed: u64,
    ) -> DynamicClustering {
        assert_eq!(clustering.center.len(), n);
        let shifts = exponential_shifts(n, beta, seed);
        let delta_max = shifts.iter().cloned().fold(0.0f64, f64::max);
        DynamicClustering {
            center: clustering.center.clone(),
            arrival: clustering.arrival.clone(),
            start: shifts.iter().map(|&d| delta_max - d).collect(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.center.len()
    }

    /// The centre vertex of `v`'s cluster.
    #[inline]
    pub fn center_of(&self, v: Vertex) -> Vertex {
        self.center[v as usize]
    }

    /// Whether `v` currently heads its own cluster (i.e. is a live centre).
    #[inline]
    pub fn is_center(&self, v: Vertex) -> bool {
        self.center[v as usize] == v
    }

    /// The shifted arrival time of `v`.
    #[inline]
    pub fn arrival_of(&self, v: Vertex) -> f64 {
        self.arrival[v as usize]
    }

    /// Materialises the dense-id [`Clustering`] (for tests and one-shot consumers;
    /// the incremental pipeline works through the `center_of` oracle instead).
    pub fn to_clustering(&self) -> Clustering {
        Clustering::from_assignment(self.center.clone(), self.arrival.clone())
    }

    /// Repairs the clustering after inserting the edge `{u, v}`. `graph` must
    /// **already contain** the edge (improvements can relay back across it).
    ///
    /// Returns the centre vertices of every cluster whose membership changed (the old
    /// and new centres of each re-valued vertex), sorted and deduplicated. A returned
    /// centre `c` with `center_of(c) != c` identifies a cluster that ceased to exist.
    pub fn insert_edge<G: NeighborSource>(
        &mut self,
        graph: &G,
        u: Vertex,
        v: Vertex,
    ) -> Vec<Vertex> {
        let mut heap = BinaryHeap::new();
        for (from, to) in [(u, v), (v, u)] {
            let a = self.arrival[from as usize] + 1.0;
            let c = self.center[from as usize];
            if lex_less(a, c, self.arrival[to as usize], self.center[to as usize]) {
                heap.push(Candidate {
                    arrival: a,
                    vertex: to,
                    center: c,
                });
            }
        }
        // (vertex, old centre) — each vertex improves at most once: candidates pop in
        // nondecreasing (arrival, vertex, centre) order and relaying adds +1.0, so the
        // first improving pop of a vertex already carries its final value.
        let mut changed: Vec<(Vertex, Vertex)> = Vec::new();
        while let Some(cand) = heap.pop() {
            let x = cand.vertex as usize;
            if !lex_less(cand.arrival, cand.center, self.arrival[x], self.center[x]) {
                continue;
            }
            changed.push((cand.vertex, self.center[x]));
            self.arrival[x] = cand.arrival;
            self.center[x] = cand.center;
            let relayed = cand.arrival + 1.0;
            for &w in graph.neighbors_of(cand.vertex) {
                if lex_less(
                    relayed,
                    cand.center,
                    self.arrival[w as usize],
                    self.center[w as usize],
                ) {
                    heap.push(Candidate {
                        arrival: relayed,
                        vertex: w,
                        center: cand.center,
                    });
                }
            }
        }
        self.affected_centers(&changed)
    }

    /// Repairs the clustering after deleting the edge `{u, v}`. `graph` must
    /// **no longer contain** the edge.
    ///
    /// Returns the affected cluster centres exactly as [`DynamicClustering::insert_edge`]
    /// does.
    pub fn delete_edge<G: NeighborSource>(
        &mut self,
        graph: &G,
        u: Vertex,
        v: Vertex,
    ) -> Vec<Vertex> {
        // Seed suspects: an endpoint whose value was relayed across the deleted edge.
        let mut suspects: Vec<Vertex> = Vec::new();
        let mut is_suspect: HashSet<Vertex> = HashSet::new();
        if self.center[u as usize] == self.center[v as usize] {
            if self.arrival[v as usize] == self.arrival[u as usize] + 1.0 {
                suspects.push(v);
                is_suspect.insert(v);
            }
            if self.arrival[u as usize] == self.arrival[v as usize] + 1.0 {
                suspects.push(u);
                is_suspect.insert(u);
            }
        }
        // Forward closure over the old achieving DAG: anything whose chain may have
        // passed through a suspect is itself suspect (conservative — vertices with an
        // alternative equal-value chain re-solve to their old value and report no
        // change).
        let mut i = 0;
        while i < suspects.len() {
            let x = suspects[i];
            i += 1;
            let (ax, cx) = (self.arrival[x as usize], self.center[x as usize]);
            for &w in graph.neighbors_of(x) {
                if self.center[w as usize] == cx
                    && self.arrival[w as usize] == ax + 1.0
                    && is_suspect.insert(w)
                {
                    suspects.push(w);
                }
            }
        }
        if suspects.is_empty() {
            return Vec::new();
        }
        // Exact re-solve over the static suspect set: Dijkstra seeded with every
        // suspect's own start candidate plus the relayed candidates of its non-suspect
        // neighbours (whose values deletion cannot have changed).
        let old: Vec<(Vertex, f64, Vertex)> = suspects
            .iter()
            .map(|&x| (x, self.arrival[x as usize], self.center[x as usize]))
            .collect();
        let mut heap = BinaryHeap::new();
        for &x in &suspects {
            heap.push(Candidate {
                arrival: self.start[x as usize],
                vertex: x,
                center: x,
            });
            for &y in graph.neighbors_of(x) {
                if !is_suspect.contains(&y) {
                    heap.push(Candidate {
                        arrival: self.arrival[y as usize] + 1.0,
                        vertex: x,
                        center: self.center[y as usize],
                    });
                }
            }
        }
        let mut settled: HashSet<Vertex> = HashSet::new();
        while let Some(cand) = heap.pop() {
            if !settled.insert(cand.vertex) {
                continue;
            }
            let x = cand.vertex as usize;
            self.arrival[x] = cand.arrival;
            self.center[x] = cand.center;
            let relayed = cand.arrival + 1.0;
            for &w in graph.neighbors_of(cand.vertex) {
                if is_suspect.contains(&w) && !settled.contains(&w) {
                    heap.push(Candidate {
                        arrival: relayed,
                        vertex: w,
                        center: cand.center,
                    });
                }
            }
        }
        debug_assert_eq!(settled.len(), suspects.len(), "every suspect must settle");
        let changed: Vec<(Vertex, Vertex)> = old
            .into_iter()
            .filter(|&(x, a, c)| self.arrival[x as usize] != a || self.center[x as usize] != c)
            .map(|(x, _, c)| (x, c))
            .collect();
        self.affected_centers(&changed)
    }

    /// The old and new centres of each vertex whose **centre** changed, sorted and
    /// deduplicated. Re-valued vertices that kept their centre (arrival-only
    /// improvements) are excluded on purpose: cluster membership is what the cover
    /// batches are a function of, and arrival-only repairs leave every batch
    /// byte-identical — reporting them would only trigger spurious rebuilds.
    fn affected_centers(&self, changed: &[(Vertex, Vertex)]) -> Vec<Vertex> {
        let mut affected: Vec<Vertex> = changed
            .iter()
            .filter(|&&(x, old_center)| self.center[x as usize] != old_center)
            .flat_map(|&(x, old_center)| [old_center, self.center[x as usize]])
            .collect();
        affected.sort_unstable();
        affected.dedup();
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster;
    use psi_graph::{generators, AdjacencyList};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Asserts the dynamic state equals a from-scratch sequential re-clustering of
    /// `graph`, field by field and bit for bit.
    fn assert_matches_scratch(dyn_c: &DynamicClustering, graph: &CsrGraph, beta: f64, seed: u64) {
        let fresh = cluster(graph, beta, seed);
        assert_eq!(dyn_c.center, fresh.center, "centres diverged from scratch");
        for v in 0..dyn_c.num_vertices() {
            assert!(
                dyn_c.arrival[v] == fresh.arrival[v],
                "arrival diverged at {v}: {} vs {}",
                dyn_c.arrival[v],
                fresh.arrival[v],
            );
        }
    }

    fn churn(mut graph: AdjacencyList, beta: f64, seed: u64, flips: usize, rng_seed: u64) {
        let n = graph.num_vertices();
        let mut dyn_c = DynamicClustering::from_graph(&graph.to_csr(), beta, seed);
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        for _ in 0..flips {
            let u = rng.gen_range(0..n) as Vertex;
            let v = rng.gen_range(0..n) as Vertex;
            if u == v {
                continue;
            }
            if graph.has_edge(u, v) {
                graph.delete_edge(u, v);
                dyn_c.delete_edge(&graph, u, v);
            } else {
                graph.insert_edge(u, v);
                dyn_c.insert_edge(&graph, u, v);
            }
            assert_matches_scratch(&dyn_c, &graph.to_csr(), beta, seed);
        }
    }

    #[test]
    fn random_flips_on_a_grid_match_scratch() {
        let g = generators::grid(8, 8);
        churn(AdjacencyList::from_csr(&g), 8.0, 0xC0FFEE, 120, 1);
    }

    #[test]
    fn random_flips_on_a_sparse_random_graph_match_scratch() {
        let g = generators::erdos_renyi(120, 0.03, 7);
        churn(AdjacencyList::from_csr(&g), 6.0, 42, 150, 2);
    }

    #[test]
    fn churn_from_edgeless_matches_scratch() {
        // Starts with every vertex its own cluster; inserts create and merge
        // clusters, deletions split them back apart.
        churn(AdjacencyList::new(40), 4.0, 3, 200, 3);
    }

    #[test]
    fn bridge_deletion_reseeds_an_orphaned_region() {
        // Two 10-paths joined by a bridge; the far side clusters through the bridge
        // for some seeds. Deleting it must re-centre the orphaned side exactly.
        let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
        for i in 0..9u32 {
            edges.push((i, i + 1));
            edges.push((10 + i, 10 + i + 1));
        }
        edges.push((9, 10));
        let g = psi_graph::GraphBuilder::from_edges(20, &edges);
        for seed in 0..20u64 {
            let mut adj = AdjacencyList::from_csr(&g);
            let mut dyn_c = DynamicClustering::from_graph(&g, 4.0, seed);
            adj.delete_edge(9, 10);
            dyn_c.delete_edge(&adj, 9, 10);
            assert_matches_scratch(&dyn_c, &adj.to_csr(), 4.0, seed);
        }
    }

    #[test]
    fn affected_centers_are_sound() {
        // Every vertex whose centre changed must have both its old and new centre in
        // the affected list (the contract the cover rebuild relies on).
        let g = generators::grid(9, 9);
        let mut adj = AdjacencyList::from_csr(&g);
        let mut dyn_c = DynamicClustering::from_graph(&g, 8.0, 5);
        let before = dyn_c.center.clone();
        adj.insert_edge(0, 80);
        let affected = dyn_c.insert_edge(&adj, 0, 80);
        for (v, &old_c) in before.iter().enumerate() {
            let new_c = dyn_c.center_of(v as Vertex);
            if old_c != new_c {
                assert!(affected.contains(&old_c), "old centre {old_c} missing");
                assert!(affected.contains(&new_c), "new centre {new_c} missing");
            }
        }
        assert!(affected.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }
}
