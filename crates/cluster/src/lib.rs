//! Exponential Start Time Clustering (low-diameter decomposition).
//!
//! Implements the clustering of Miller, Peng, Vladu and Xu ("Improved parallel
//! algorithms for spanners and hopsets", SPAA 2015) used by the paper as Lemma 2.3:
//! an *Exponential Start Time β-Clustering* partitions the vertices into clusters of
//! diameter `O(β log n)` (w.h.p.) such that every edge crosses two distinct clusters
//! with probability at most `1/β`.
//!
//! Every vertex `v` draws an exponential shift `δ_v ~ Exp(1/β)` and joins the cluster of
//! the centre `c` minimising `dist(c, v) − δ_c`. Because all edges have unit weight the
//! computation is a multi-source shifted BFS; we provide both an exact sequential
//! Dijkstra-style reference ([`cluster`]) and a round-synchronous parallel
//! implementation ([`cluster_parallel`]) that settles, in round `r`, exactly the
//! vertices whose shifted arrival time falls in `[r, r+1)` — the two produce identical
//! clusterings for the same seed.
//!
//! The paper instantiates `β = 2k` (twice the pattern size), which by Observation 1
//! keeps any fixed connected `k`-vertex occurrence inside a single cluster with
//! probability at least 1/2.

pub mod clustering;
pub mod incremental;
pub mod shifts;

pub use clustering::{cluster, cluster_parallel, Clustering};
pub use incremental::DynamicClustering;
pub use shifts::exponential_shifts;
